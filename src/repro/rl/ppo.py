"""Proximal Policy Optimization (clipped surrogate objective).

This is a faithful NumPy re-implementation of the algorithm the paper's
adversaries were trained with ("The training algorithm used was PPO, with
the default arguments of the stable-baselines implementation except for the
learning rate, which is a constant", section 3).  Defaults below follow
stable-baselines PPO2: gamma=0.99, lambda=0.95, clip=0.2, entropy
coefficient 0.01, value coefficient 0.5, gradient-norm clipping at 0.5 and
a constant learning rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.nn.optim import Adam, clip_grad_norm
from repro.obs.metrics import MetricsRecorder, NULL_RECORDER
from repro.rl.buffer import RolloutBuffer
from repro.rl.env import Env
from repro.rl.policy import ActorCritic
from repro.rl.running_stat import RunningMeanStd
from repro.rl.spaces import Box
from repro.rl.vec_env import SyncVecEnv, VecEnv, make_vec_env

__all__ = ["PPO", "PPOConfig"]


@dataclass
class PPOConfig:
    """Hyper-parameters for :class:`PPO` (stable-baselines PPO2 defaults)."""

    n_steps: int = 256
    batch_size: int = 64
    n_epochs: int = 4
    #: Number of parallel environments per rollout.  ``n_envs == 1`` is the
    #: exact historical single-env path; ``n_envs > 1`` collects via a
    #: vectorized env with one batched forward pass per time step.
    n_envs: int = 1
    #: Rollout-collection backend for ``n_envs > 1``: ``"sync"`` steps all
    #: envs in-process (:class:`~repro.rl.vec_env.SyncVecEnv`; right when
    #: the env step is cheap or batchable), ``"subproc"`` gives each env a
    #: worker process (:class:`~repro.rl.vec_env.SubprocVecEnv`; right when
    #: the env step itself dominates, e.g. the packet-level CC emulator).
    vec_backend: str = "sync"
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_range: float = 0.2
    ent_coef: float = 0.01
    vf_coef: float = 0.5
    learning_rate: float = 2.5e-4
    max_grad_norm: float = 0.5
    target_kl: float | None = None
    normalize_obs: bool = True
    normalize_adv: bool = True
    hidden: tuple[int, ...] = (32, 16)
    activation: str = "tanh"
    init_log_std: float = 0.0

    def validate(self) -> None:
        if self.n_steps <= 0:
            raise ValueError("n_steps must be positive")
        if self.n_envs <= 0:
            raise ValueError("n_envs must be positive")
        if self.vec_backend not in ("sync", "subproc"):
            raise ValueError(
                f"vec_backend must be 'sync' or 'subproc', got {self.vec_backend!r}"
            )
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        if not 0.0 <= self.gae_lambda <= 1.0:
            raise ValueError("gae_lambda must be in [0, 1]")
        if self.clip_range <= 0.0:
            raise ValueError("clip_range must be positive")
        rollout = self.n_steps * self.n_envs
        if self.batch_size <= 0 or self.batch_size > rollout:
            raise ValueError("batch_size must be in (0, n_steps * n_envs]")
        # Every epoch must split the rollout into equal minibatches;
        # a ragged final batch would silently change the effective
        # per-sample learning rate (the gradient is averaged over the
        # minibatch) and break run-to-run comparability across n_envs.
        if rollout % self.batch_size != 0:
            raise ValueError(
                f"batch_size ({self.batch_size}) must divide "
                f"n_steps * n_envs ({rollout})"
            )


class PPO:
    """PPO trainer binding a policy to an environment.

    Parameters
    ----------
    env:
        The training environment.
    config:
        Hyper-parameters; see :class:`PPOConfig`.
    seed:
        Seeds network initialization, action sampling and minibatching.
    policy:
        Optionally, a pre-built (e.g. partially trained) policy to continue
        training -- this is how the robustification pipeline of section 2.3
        resumes Pensieve's training on the augmented trace corpus.
    recorder:
        A :class:`~repro.obs.MetricsRecorder` receiving per-update
        diagnostics (losses, KL, entropy, clip fraction, gradient norm,
        explained variance, episode-return stats, phase timings).  The
        default no-op recorder makes instrumentation free; recording
        never consumes randomness or mutates training state, so a run
        is bitwise identical with logging on or off.
    """

    def __init__(
        self,
        env: Env | VecEnv,
        config: PPOConfig | None = None,
        seed: int = 0,
        policy: ActorCritic | None = None,
        recorder: MetricsRecorder | None = None,
    ) -> None:
        self.cfg = config if config is not None else PPOConfig()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._owns_vec_env = False
        if isinstance(env, VecEnv):
            if self.cfg.n_envs not in (1, env.n_envs):
                raise ValueError(
                    f"config.n_envs={self.cfg.n_envs} does not match the "
                    f"given vectorized env of {env.n_envs} envs"
                )
            self.cfg.n_envs = env.n_envs
            self.vec_env: VecEnv | None = env
            # Subproc workers hold their envs remotely; ``self.env`` is
            # only available (and only needed) on in-process backends.
            self.env = env.envs[0] if isinstance(env, SyncVecEnv) else None
        elif self.cfg.n_envs > 1:
            self.vec_env = make_vec_env(
                env, self.cfg.n_envs, backend=self.cfg.vec_backend
            )
            self._owns_vec_env = True
            self.env = env
        else:
            self.vec_env = None
            self.env = env
        self.cfg.validate()
        self.rng = np.random.default_rng(seed)
        space_owner = self.vec_env if self.vec_env is not None else self.env
        obs_space = space_owner.observation_space
        obs_dim = obs_space.dim if isinstance(obs_space, Box) else 1
        self.policy = policy if policy is not None else ActorCritic(
            obs_dim,
            space_owner.action_space,
            hidden=self.cfg.hidden,
            activation=self.cfg.activation,
            rng=self.rng,
            init_log_std=self.cfg.init_log_std,
        )
        act_dim = 1 if self.policy.discrete else self.policy.action_space.dim
        self.buffer = RolloutBuffer(
            self.cfg.n_steps, self.policy.obs_dim, act_dim, self.policy.discrete,
            n_envs=self.cfg.n_envs,
        )
        self.optimizer = Adam(self.policy.parameters(), lr=self.cfg.learning_rate)
        self.obs_rms = RunningMeanStd((self.policy.obs_dim,))
        self.total_steps = 0
        self.history: list[dict] = []
        self._obs: np.ndarray | None = None

    # -- rollout -------------------------------------------------------------

    def _normalize(self, obs: np.ndarray) -> np.ndarray:
        if self.cfg.normalize_obs:
            return self.obs_rms.normalize(obs)
        return np.asarray(obs, dtype=float)

    def collect_rollout(self) -> float | np.ndarray:
        """Fill the buffer with ``n_steps`` transitions per env.

        Returns the bootstrap value(s) of the state(s) following the final
        stored transition: a float on the single-env path, an ``(n_envs,)``
        array on the vectorized path.
        """
        if self.vec_env is None:
            return self._collect_rollout_single()
        return self._collect_rollout_vec()

    def _collect_rollout_single(self) -> float:
        """The historical scalar loop: one env, one forward pass per step."""
        if self._obs is None:
            self._obs = self.env.reset(seed=int(self.rng.integers(2**31 - 1)))
        self.buffer.reset()
        raw_batch = np.zeros((self.cfg.n_steps, self.policy.obs_dim))
        done = False
        for t in range(self.cfg.n_steps):
            raw_batch[t] = self._obs
            norm_obs = self._normalize(self._obs)
            action, log_prob, value = self.policy.act(norm_obs, self.rng)
            next_obs, reward, done, _info = self.env.step(action)
            self.buffer.add(norm_obs, action, float(reward), done, value, log_prob)
            self._obs = self.env.reset() if done else next_obs
            self.total_steps += 1
        if done:
            last_value = 0.0
        else:
            last_value = float(self.policy.value(np.atleast_2d(self._normalize(self._obs)))[0])
        if self.cfg.normalize_obs:
            self.obs_rms.update(raw_batch)
        return last_value

    def _collect_rollout_vec(self) -> np.ndarray:
        """Batched rollout: all envs advance together, one stacked forward
        pass per time step.  With one env this performs the same operations
        and random draws as :meth:`_collect_rollout_single`, bit for bit."""
        vec = self.vec_env
        assert vec is not None
        n_envs = vec.n_envs
        if self._obs is None:
            self._obs = vec.reset(seed=int(self.rng.integers(2**31 - 1)))
        self.buffer.reset()
        raw_batch = np.zeros((self.cfg.n_steps, n_envs, self.policy.obs_dim))
        dones = np.zeros(n_envs, dtype=bool)
        for t in range(self.cfg.n_steps):
            raw_batch[t] = self._obs
            norm_obs = self._normalize(self._obs)
            actions, log_probs, values = self.policy.act_batch(norm_obs, self.rng)
            next_obs, rewards, dones, _infos = vec.step(actions)
            self.buffer.add_batch(norm_obs, actions, rewards, dones, values, log_probs)
            self._obs = next_obs
            self.total_steps += n_envs
        last_values = self.policy.value(np.atleast_2d(self._normalize(self._obs)))
        last_values = np.where(dones, 0.0, last_values)
        if self.cfg.normalize_obs:
            self.obs_rms.update(raw_batch.reshape(-1, self.policy.obs_dim))
        return last_values

    # -- update --------------------------------------------------------------

    def update(self) -> dict:
        """Run the clipped-surrogate update over the stored rollout.

        Besides performing the optimization, returns the full diagnostic
        set the observability layer records per update: policy/value
        loss, approximate KL, entropy, clip fraction, pre-clip gradient
        norm and the explained variance of the rollout's value estimates.
        Every diagnostic is derived from quantities the update computes
        anyway -- nothing here draws randomness or touches parameters.
        """
        cfg = self.cfg
        buf = self.buffer
        flat = buf.flattened()
        stats = {"pi_loss": 0.0, "v_loss": 0.0, "entropy": 0.0, "approx_kl": 0.0,
                 "clip_frac": 0.0, "grad_norm": 0.0}
        n_updates = 0
        early_stop = False
        for _epoch in range(cfg.n_epochs):
            for idx in buf.minibatches(cfg.batch_size, self.rng):
                mb_obs = flat.obs[idx]
                mb_actions = flat.actions[idx]
                mb_old_logp = flat.log_probs[idx]
                mb_returns = flat.returns[idx]
                adv = flat.advantages[idx]
                if cfg.normalize_adv and len(idx) > 1:
                    adv = (adv - adv.mean()) / (adv.std() + 1e-8)
                m = len(idx)

                self.policy.zero_grad()
                dist = self.policy.distribution(mb_obs)
                logp = dist.log_prob(mb_actions)
                ratio = np.exp(logp - mb_old_logp)
                surr1 = ratio * adv
                surr2 = np.clip(ratio, 1.0 - cfg.clip_range, 1.0 + cfg.clip_range) * adv
                # Gradient flows only where the unclipped branch is active.
                active = (surr1 <= surr2).astype(float)
                d_logp = -(adv * ratio * active) / m
                entropy = dist.entropy()
                if self.policy.discrete:
                    d_logits = d_logp[:, None] * dist.log_prob_grad(mb_actions)
                    d_logits += (-cfg.ent_coef / m) * dist.entropy_grad()
                    self.policy.policy_backward(d_logits)
                else:
                    g_mean, g_log_std = dist.log_prob_grad(mb_actions)
                    d_mean = d_logp[:, None] * g_mean
                    d_ls = d_logp[:, None] * g_log_std
                    d_ls += (-cfg.ent_coef / m) * dist.entropy_grad()
                    self.policy.policy_backward(d_mean, d_ls.sum(axis=0))

                values = self.policy.value(mb_obs)
                d_values = cfg.vf_coef * (values - mb_returns) / m
                self.policy.value_backward(d_values)

                grads = self.policy.gradients()
                grad_norm = clip_grad_norm(grads, cfg.max_grad_norm)
                self.optimizer.step(grads)

                stats["pi_loss"] += float(-np.minimum(surr1, surr2).mean())
                stats["v_loss"] += float(0.5 * np.mean((values - mb_returns) ** 2))
                stats["entropy"] += float(entropy.mean())
                stats["approx_kl"] += float(np.mean(mb_old_logp - logp))
                stats["clip_frac"] += float(
                    np.mean(np.abs(ratio - 1.0) > cfg.clip_range)
                )
                stats["grad_norm"] += float(grad_norm)
                n_updates += 1
            if cfg.target_kl is not None:
                dist = self.policy.distribution(flat.obs)
                kl = float(np.mean(flat.log_probs - dist.log_prob(flat.actions)))
                if kl > 1.5 * cfg.target_kl:
                    early_stop = True
                    break
        for key in stats:
            stats[key] /= max(n_updates, 1)
        # Explained variance of the rollout-time value estimates
        # (``values = returns - advantages`` by the GAE identity): how
        # much of the return signal the critic already accounts for.
        var_returns = float(np.var(flat.returns))
        stats["explained_variance"] = (
            1.0 - float(np.var(flat.advantages)) / var_returns
            if var_returns > 0.0
            else float("nan")
        )
        stats["early_stop"] = early_stop
        return stats

    # -- main loop -----------------------------------------------------------

    def learn(
        self,
        total_steps: int,
        callback: Callable[["PPO", dict], None] | None = None,
    ) -> list[dict]:
        """Train for (at least) ``total_steps`` environment steps."""
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        target = self.total_steps + total_steps
        while self.total_steps < target:
            with self.recorder.timer("ppo/rollout_seconds"):
                last_value = self.collect_rollout()
            self.buffer.compute_gae(last_value, self.cfg.gamma, self.cfg.gae_lambda)
            with self.recorder.timer("ppo/update_seconds"):
                stats = self.update()
            stats["steps"] = self.total_steps
            stats["mean_episode_reward"] = self.buffer.mean_episode_reward()
            stats.update(self.buffer.episode_return_stats())
            self.history.append(stats)
            self.recorder.record_dict(stats, step=self.total_steps, prefix="ppo/")
            if callback is not None:
                callback(self, stats)
        return self.history

    def close(self) -> None:
        """Shut down a vectorized env this trainer built internally.

        Only envs constructed by :class:`PPO` itself (prototype env with
        ``n_envs > 1``) are closed; an externally supplied env -- vec or
        not -- stays the caller's to manage.  Idempotent.
        """
        if self._owns_vec_env and self.vec_env is not None:
            self.vec_env.close()
            self.vec_env = None

    # -- deterministic acting and persistence ---------------------------------

    def predict(
        self,
        obs: np.ndarray,
        deterministic: bool = True,
        rng: np.random.Generator | None = None,
    ):
        """Map an observation to an action using current (normalized) stats.

        ``rng`` overrides the trainer's generator for the exploration
        noise of stochastic predictions, letting callers (e.g. adversarial
        trace generation) make each rollout reproducible from its own
        seed regardless of how much the shared generator was consumed.
        """
        action, _logp, _value = self.policy.act(
            self._normalize(obs), rng if rng is not None else self.rng,
            deterministic=deterministic,
        )
        return action

    @staticmethod
    def checkpoint_path(path: str | Path) -> Path:
        """Canonical on-disk checkpoint path: always the ``.npz`` name.

        ``np.savez`` silently appends ``.npz`` to names that lack it;
        normalizing here makes ``save(p)``/``load(p)`` round-trip for any
        of ``p``, ``p.npz`` and ``Path(p)`` spellings of the same file.
        """
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_name(path.name + ".npz")
        return path

    def save(self, path: str | Path) -> None:
        path = self.checkpoint_path(path)
        arrays = {f"param_{i}": w for i, w in enumerate(self.policy.get_weights())}
        arrays["rms_mean"] = self.obs_rms.mean
        arrays["rms_var"] = self.obs_rms.var
        arrays["rms_count"] = np.array(self.obs_rms.count)
        np.savez(path, **arrays)
        self.recorder.event("checkpoint_saved", path=str(path))

    def load(self, path: str | Path) -> None:
        """Restore policy weights and observation statistics from ``path``.

        The checkpoint is fully read and validated against the current
        policy -- parameter count, every parameter shape, and the
        normalization-statistics shape -- *before* anything is mutated,
        so a mismatched file raises a clear :class:`ValueError` and
        leaves the trainer exactly as it was.
        """
        path = self.checkpoint_path(path)
        with np.load(path) as data:
            weights: list[np.ndarray] = []
            i = 0
            while f"param_{i}" in data:
                weights.append(data[f"param_{i}"])
                i += 1
            missing = [k for k in ("rms_mean", "rms_var", "rms_count")
                       if k not in data]
            if missing:
                raise ValueError(
                    f"checkpoint {path} is missing arrays {missing}; "
                    "not a PPO checkpoint?"
                )
            rms_state = {
                "mean": data["rms_mean"],
                "var": data["rms_var"],
                "count": float(data["rms_count"]),
            }
        params = self.policy.parameters()
        if len(weights) != len(params):
            raise ValueError(
                f"checkpoint {path} holds {len(weights)} parameter arrays "
                f"but the policy has {len(params)}; architecture mismatch "
                "(hidden sizes / action space?)"
            )
        for i, (w, p) in enumerate(zip(weights, params)):
            if w.shape != p.shape:
                raise ValueError(
                    f"checkpoint {path} param_{i} has shape {w.shape}, "
                    f"policy expects {p.shape}; refusing to load"
                )
        rms_shape = np.asarray(rms_state["mean"]).shape
        if rms_shape != self.obs_rms.mean.shape:
            raise ValueError(
                f"checkpoint {path} normalization stats have shape "
                f"{rms_shape}, trainer expects {self.obs_rms.mean.shape}"
            )
        self.policy.set_weights(weights)
        self.obs_rms.load_state(rms_state)
        self.recorder.event("checkpoint_loaded", path=str(path))
