"""Proximal Policy Optimization (clipped surrogate objective).

This is a faithful NumPy re-implementation of the algorithm the paper's
adversaries were trained with ("The training algorithm used was PPO, with
the default arguments of the stable-baselines implementation except for the
learning rate, which is a constant", section 3).  Defaults below follow
stable-baselines PPO2: gamma=0.99, lambda=0.95, clip=0.2, entropy
coefficient 0.01, value coefficient 0.5, gradient-norm clipping at 0.5 and
a constant learning rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.nn.optim import Adam, clip_grad_norm
from repro.rl.buffer import RolloutBuffer
from repro.rl.env import Env
from repro.rl.policy import ActorCritic
from repro.rl.running_stat import RunningMeanStd
from repro.rl.spaces import Box

__all__ = ["PPO", "PPOConfig"]


@dataclass
class PPOConfig:
    """Hyper-parameters for :class:`PPO` (stable-baselines PPO2 defaults)."""

    n_steps: int = 256
    batch_size: int = 64
    n_epochs: int = 4
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_range: float = 0.2
    ent_coef: float = 0.01
    vf_coef: float = 0.5
    learning_rate: float = 2.5e-4
    max_grad_norm: float = 0.5
    target_kl: float | None = None
    normalize_obs: bool = True
    normalize_adv: bool = True
    hidden: tuple[int, ...] = (32, 16)
    activation: str = "tanh"
    init_log_std: float = 0.0

    def validate(self) -> None:
        if self.n_steps <= 0:
            raise ValueError("n_steps must be positive")
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        if not 0.0 <= self.gae_lambda <= 1.0:
            raise ValueError("gae_lambda must be in [0, 1]")
        if self.clip_range <= 0.0:
            raise ValueError("clip_range must be positive")
        if self.batch_size <= 0 or self.batch_size > self.n_steps:
            raise ValueError("batch_size must be in (0, n_steps]")


class PPO:
    """PPO trainer binding a policy to an environment.

    Parameters
    ----------
    env:
        The training environment.
    config:
        Hyper-parameters; see :class:`PPOConfig`.
    seed:
        Seeds network initialization, action sampling and minibatching.
    policy:
        Optionally, a pre-built (e.g. partially trained) policy to continue
        training -- this is how the robustification pipeline of section 2.3
        resumes Pensieve's training on the augmented trace corpus.
    """

    def __init__(
        self,
        env: Env,
        config: PPOConfig | None = None,
        seed: int = 0,
        policy: ActorCritic | None = None,
    ) -> None:
        self.env = env
        self.cfg = config if config is not None else PPOConfig()
        self.cfg.validate()
        self.rng = np.random.default_rng(seed)
        obs_dim = env.observation_space.dim if isinstance(env.observation_space, Box) else 1
        self.policy = policy if policy is not None else ActorCritic(
            obs_dim,
            env.action_space,
            hidden=self.cfg.hidden,
            activation=self.cfg.activation,
            rng=self.rng,
            init_log_std=self.cfg.init_log_std,
        )
        act_dim = 1 if self.policy.discrete else self.policy.action_space.dim
        self.buffer = RolloutBuffer(
            self.cfg.n_steps, self.policy.obs_dim, act_dim, self.policy.discrete
        )
        self.optimizer = Adam(self.policy.parameters(), lr=self.cfg.learning_rate)
        self.obs_rms = RunningMeanStd((self.policy.obs_dim,))
        self.total_steps = 0
        self.history: list[dict] = []
        self._obs: np.ndarray | None = None

    # -- rollout -------------------------------------------------------------

    def _normalize(self, obs: np.ndarray) -> np.ndarray:
        if self.cfg.normalize_obs:
            return self.obs_rms.normalize(obs)
        return np.asarray(obs, dtype=float)

    def collect_rollout(self) -> float:
        """Fill the buffer with ``n_steps`` transitions; return the last value."""
        if self._obs is None:
            self._obs = self.env.reset(seed=int(self.rng.integers(2**31 - 1)))
        self.buffer.reset()
        raw_batch = np.zeros((self.cfg.n_steps, self.policy.obs_dim))
        done = False
        for t in range(self.cfg.n_steps):
            raw_batch[t] = self._obs
            norm_obs = self._normalize(self._obs)
            action, log_prob, value = self.policy.act(norm_obs, self.rng)
            next_obs, reward, done, _info = self.env.step(action)
            self.buffer.add(norm_obs, action, float(reward), done, value, log_prob)
            self._obs = self.env.reset() if done else next_obs
            self.total_steps += 1
        if done:
            last_value = 0.0
        else:
            last_value = float(self.policy.value(np.atleast_2d(self._normalize(self._obs)))[0])
        if self.cfg.normalize_obs:
            self.obs_rms.update(raw_batch)
        return last_value

    # -- update --------------------------------------------------------------

    def update(self) -> dict:
        """Run the clipped-surrogate update over the stored rollout."""
        cfg = self.cfg
        buf = self.buffer
        n = buf.pos
        stats = {"pi_loss": 0.0, "v_loss": 0.0, "entropy": 0.0, "approx_kl": 0.0}
        n_updates = 0
        early_stop = False
        for _epoch in range(cfg.n_epochs):
            for idx in buf.minibatches(cfg.batch_size, self.rng):
                mb_obs = buf.obs[idx]
                mb_actions = buf.actions[idx]
                mb_old_logp = buf.log_probs[idx]
                mb_returns = buf.returns[idx]
                adv = buf.advantages[idx]
                if cfg.normalize_adv and len(idx) > 1:
                    adv = (adv - adv.mean()) / (adv.std() + 1e-8)
                m = len(idx)

                self.policy.zero_grad()
                dist = self.policy.distribution(mb_obs)
                logp = dist.log_prob(mb_actions)
                ratio = np.exp(logp - mb_old_logp)
                surr1 = ratio * adv
                surr2 = np.clip(ratio, 1.0 - cfg.clip_range, 1.0 + cfg.clip_range) * adv
                # Gradient flows only where the unclipped branch is active.
                active = (surr1 <= surr2).astype(float)
                d_logp = -(adv * ratio * active) / m
                entropy = dist.entropy()
                if self.policy.discrete:
                    d_logits = d_logp[:, None] * dist.log_prob_grad(mb_actions)
                    d_logits += (-cfg.ent_coef / m) * dist.entropy_grad()
                    self.policy.policy_backward(d_logits)
                else:
                    g_mean, g_log_std = dist.log_prob_grad(mb_actions)
                    d_mean = d_logp[:, None] * g_mean
                    d_ls = d_logp[:, None] * g_log_std
                    d_ls += (-cfg.ent_coef / m) * dist.entropy_grad()
                    self.policy.policy_backward(d_mean, d_ls.sum(axis=0))

                values = self.policy.value(mb_obs)
                d_values = cfg.vf_coef * (values - mb_returns) / m
                self.policy.value_backward(d_values)

                grads = self.policy.gradients()
                clip_grad_norm(grads, cfg.max_grad_norm)
                self.optimizer.step(grads)

                stats["pi_loss"] += float(-np.minimum(surr1, surr2).mean())
                stats["v_loss"] += float(0.5 * np.mean((values - mb_returns) ** 2))
                stats["entropy"] += float(entropy.mean())
                stats["approx_kl"] += float(np.mean(mb_old_logp - logp))
                n_updates += 1
            if cfg.target_kl is not None:
                dist = self.policy.distribution(buf.obs[:n])
                kl = float(np.mean(buf.log_probs[:n] - dist.log_prob(buf.actions[:n])))
                if kl > 1.5 * cfg.target_kl:
                    early_stop = True
                    break
        for key in stats:
            stats[key] /= max(n_updates, 1)
        stats["early_stop"] = early_stop
        return stats

    # -- main loop -----------------------------------------------------------

    def learn(
        self,
        total_steps: int,
        callback: Callable[["PPO", dict], None] | None = None,
    ) -> list[dict]:
        """Train for (at least) ``total_steps`` environment steps."""
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        target = self.total_steps + total_steps
        while self.total_steps < target:
            last_value = self.collect_rollout()
            self.buffer.compute_gae(last_value, self.cfg.gamma, self.cfg.gae_lambda)
            stats = self.update()
            stats["steps"] = self.total_steps
            stats["mean_episode_reward"] = self.buffer.mean_episode_reward()
            self.history.append(stats)
            if callback is not None:
                callback(self, stats)
        return self.history

    # -- deterministic acting and persistence ---------------------------------

    def predict(self, obs: np.ndarray, deterministic: bool = True):
        """Map an observation to an action using current (normalized) stats."""
        action, _logp, _value = self.policy.act(
            self._normalize(obs), self.rng, deterministic=deterministic
        )
        return action

    def save(self, path: str | Path) -> None:
        path = Path(path)
        arrays = {f"param_{i}": w for i, w in enumerate(self.policy.get_weights())}
        arrays["rms_mean"] = self.obs_rms.mean
        arrays["rms_var"] = self.obs_rms.var
        arrays["rms_count"] = np.array(self.obs_rms.count)
        np.savez(path, **arrays)

    def load(self, path: str | Path) -> None:
        data = np.load(Path(path) if str(path).endswith(".npz") else f"{path}.npz")
        weights: list[np.ndarray] = []
        i = 0
        while f"param_{i}" in data:
            weights.append(data[f"param_{i}"])
            i += 1
        self.policy.set_weights(weights)
        self.obs_rms.load_state(
            {"mean": data["rms_mean"], "var": data["rms_var"], "count": float(data["rms_count"])}
        )
