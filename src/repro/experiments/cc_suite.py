"""Congestion-control experiment runners (Table 1, Figures 5-6)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adversary.cc_env import CcAdversaryEnv
from repro.adversary.generation import (
    CcRollout,
    generate_cc_traces,
    rollout_cc_adversary,
)
from repro.cc.matrix import CcMatrixResult, run_cc_matrix
from repro.cc.metrics import CcRunResult, run_sender_on_traces
from repro.cc.protocols.bbr import BBRSender
from repro.exec import ParallelMap, ResultCache, as_runner
from repro.obs.metrics import MetricsRecorder, NULL_RECORDER
from repro.rl.ppo import PPO

__all__ = [
    "BbrAdversarialExperiment",
    "run_bbr_adversarial_experiment",
    "run_cc_scenario_matrix",
]


@dataclass
class BbrAdversarialExperiment:
    """Figures 5 and 6 data.

    - ``online_capacity_fractions``: BBR throughput as a fraction of link
      capacity while the (stochastic) adversary runs online -- the paper's
      45-65% claim,
    - ``replayed``: the same metric when recorded traces are replayed
      against a fresh BBR (reproducibility of the attack),
    - ``deterministic``: the noise-free rollout backing Figure 6, with
      raw policy actions and the probing epochs of the attacked BBR.
    """

    online_capacity_fractions: list[float]
    replayed: list[CcRunResult]
    deterministic: CcRollout
    deterministic_probe_times_s: list[float]
    fig5_throughput_mbps: np.ndarray
    fig5_bandwidth_mbps: np.ndarray


def run_bbr_adversarial_experiment(
    trainer: PPO,
    env: CcAdversaryEnv,
    n_online: int = 5,
    n_replay: int = 5,
    replay_seed: int = 1000,
    rollout_seed: int | None = None,
    workers: "int | ParallelMap | None" = None,
    cache: "ResultCache | str | bool | None" = None,
    recorder: MetricsRecorder | None = None,
) -> BbrAdversarialExperiment:
    """Roll out a trained CC adversary and quantify BBR's degradation.

    ``rollout_seed`` gives every online rollout its own generator spawned
    from one ``np.random.SeedSequence``, making the Figure 5/6 series
    reproducible regardless of the trainer's leftover generator state --
    and independent, so with it set ``workers`` fans the online rollouts
    over a process pool (without it they stay serial: their noise shares
    the trainer's generator).  The trace replays are always independent;
    ``workers`` parallelizes and ``cache`` memoizes them.  The
    deterministic Figure 6 rollout runs in-process so the attacked
    sender's probing log stays inspectable.  All outputs are identical to
    the serial uncached run; ``recorder`` observes phase timings, the
    per-rollout capacity fractions and the cache counters.
    """
    n_rollouts = max(n_online, n_replay)
    cache = ResultCache.resolve(cache)
    recorder = recorder if recorder is not None else NULL_RECORDER
    with as_runner(workers, recorder=recorder) as runner:
        with recorder.timer("experiment/online_rollouts_seconds",
                            rollouts=n_rollouts):
            online = generate_cc_traces(
                trainer, env, n_rollouts, deterministic=False,
                names=[f"adv-cc-{i}" for i in range(n_rollouts)],
                seed=rollout_seed,
                workers=runner if rollout_seed is not None else 0,
            )
        fractions = [r.capacity_fraction for r in online[:n_online]]
        for i, fraction in enumerate(fractions):
            recorder.record("experiment/capacity_fraction", fraction, step=i)
        with recorder.timer("experiment/replay_seconds", replays=n_replay):
            replayed = run_sender_on_traces(
                BBRSender,
                [roll.trace for roll in online[:n_replay]],
                seeds=[replay_seed + i for i in range(n_replay)],
                workers=runner,
                cache=cache if cache is not None else False,
            )

        with recorder.timer("experiment/deterministic_rollout_seconds"):
            deterministic = rollout_cc_adversary(trainer, env, deterministic=True)
    if cache is not None:
        cache.record_metrics(recorder)
    sender = env.sender
    probe_times = [t for t, mode in sender.mode_log if mode == BBRSender.PROBE_RTT]

    # Figure 5 series: throughput vs available bandwidth over the run that
    # produced the first recorded trace (1-second bins for readability).
    intervals = online[0].intervals
    throughput = np.array([s.throughput_mbps for s in intervals])
    bandwidth = np.array([s.bandwidth_mbps for s in intervals])
    return BbrAdversarialExperiment(
        online_capacity_fractions=fractions,
        replayed=replayed,
        deterministic=deterministic,
        deterministic_probe_times_s=probe_times,
        fig5_throughput_mbps=throughput,
        fig5_bandwidth_mbps=bandwidth,
    )


def run_cc_scenario_matrix(
    protocols: list[str] | None = None,
    n_intervals: int = 600,
    seed: int = 0,
    schedule_seed: int = 42,
    workers: "int | ParallelMap | None" = None,
    cache: "ResultCache | str | bool | None" = None,
    recorder: MetricsRecorder | None = None,
) -> CcMatrixResult:
    """The suite entry point for the 5 x 4 contention scenario matrix.

    Thin wrapper over :func:`repro.cc.matrix.run_cc_matrix` with suite
    defaults, so experiment scripts drive the matrix with the same
    ``workers``/``cache``/``recorder`` plumbing as
    :func:`run_bbr_adversarial_experiment` (and can share one
    :class:`~repro.exec.ParallelMap` across both).
    """
    return run_cc_matrix(
        protocols=protocols,
        n_intervals=n_intervals,
        seed=seed,
        schedule_seed=schedule_seed,
        workers=workers,
        cache=cache,
        recorder=recorder,
    )
