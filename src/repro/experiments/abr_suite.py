"""ABR experiment runners (Figures 1-4 of the paper)."""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.abr.batched import SessionSpec, resolve_batch_size, run_batched_sessions
from repro.abr.protocols.base import AbrPolicy, run_session
from repro.abr.protocols.optimal import optimal_plan_dp
from repro.abr.protocols.pensieve import continue_training, train_pensieve
from repro.abr.qoe import QoEWeights
from repro.abr.video import Video
from repro.adversary.abr_env import train_abr_adversary
from repro.adversary.generation import generate_abr_traces
from repro.analysis.stats import QoERatioSummary, percentile, qoe_ratio_summary
from repro.exec import ParallelMap, ResultCache, as_runner, cached_map, make_key
from repro.obs.metrics import MetricsRecorder, NULL_RECORDER
from repro.rl.ppo import PPO, PPOConfig
from repro.traces.trace import Trace

__all__ = [
    "AbrCdfExperiment",
    "BbWeaknessExperiment",
    "RobustnessExperiment",
    "evaluate_protocols",
    "run_abr_cdf_experiment",
    "run_bb_weakness_experiment",
    "run_robustness_experiment",
]


def _session_qoe_task(task) -> float:
    """One ``(video, trace, policy)`` replay; module-level for worker pickling."""
    video, trace, policy, weights, chunk_indexed = task
    return run_session(
        video, trace, policy, weights=weights, chunk_indexed=chunk_indexed
    ).qoe_mean


def _session_key(video, trace, policy, weights, chunk_indexed: bool) -> str:
    """Content address of one session: everything its QoE depends on.

    Deliberately identical between the serial and batched paths (the batch
    width is *not* part of the key): a session's QoE is a property of the
    session, not of how many neighbours it was evaluated beside, so warm
    hits are shared across batch widths.
    """
    return make_key("abr-session-qoe", video, trace, policy, weights, chunk_indexed)


def _session_batch_qoe_task(task) -> list[float]:
    """One lockstep batch of session replays; module-level for pickling."""
    policy, specs, batch_size = task
    return [r.qoe_mean for r in run_batched_sessions(specs, policy, batch_size)]


def _batched_protocol_qoe(
    video,
    traces,
    policy,
    weights,
    chunk_indexed,
    batch_size,
    runner,
    cache,
    recorder,
) -> list[float]:
    """The batched-engine twin of ``cached_map`` over one protocol.

    Cache handling is identical to :func:`~repro.exec.cached_map` -- same
    per-session keys, hits served without recomputation, misses stored
    back -- with the misses played through a
    :class:`~repro.abr.batched.BatchedSessionEngine` instead of one
    ``run_session`` per task.  A parallel runner receives one task per
    ``batch_size`` sessions, composing processes x batch lanes.
    """
    results: list[float | None] = [None] * len(traces)
    keys = None
    pending = list(range(len(traces)))
    if cache is not None:
        keys = [
            _session_key(video, t, policy, weights, chunk_indexed) for t in traces
        ]
        pending = []
        for i, key in enumerate(keys):
            hit, value = cache.lookup(key)
            if hit:
                results[i] = value
            else:
                pending.append(i)
    if pending:
        specs = [
            SessionSpec(
                video=video, bandwidth=traces[i],
                chunk_indexed=chunk_indexed, weights=weights,
            )
            for i in pending
        ]
        if runner.parallel:
            slices = [
                specs[lo : lo + batch_size]
                for lo in range(0, len(specs), batch_size)
            ]
            computed_batches = runner.map(
                _session_batch_qoe_task,
                [(policy, group, batch_size) for group in slices],
            )
            computed = [value for batch in computed_batches for value in batch]
        else:
            computed = [
                r.qoe_mean
                for r in run_batched_sessions(
                    specs, policy, batch_size, recorder=recorder
                )
            ]
        for i, value in zip(pending, computed):
            results[i] = value
            if keys is not None:
                cache.put(keys[i], value)
    return results  # type: ignore[return-value]


def evaluate_protocols(
    video: Video,
    traces: list[Trace],
    protocols: Mapping[str, AbrPolicy],
    chunk_indexed: bool = False,
    weights: QoEWeights = QoEWeights(),
    workers: "int | ParallelMap | None" = None,
    cache: "ResultCache | str | bool | None" = None,
    recorder: MetricsRecorder | None = None,
    batch_size: int | None = None,
) -> dict[str, list[float]]:
    """Per-trace mean QoE of each protocol over a trace corpus.

    Sessions are independent replays, so ``workers`` fans them over a
    process pool (``0``/``1``/default: the exact serial loop; ``None``
    honours ``$REPRO_WORKERS``) and ``cache`` memoizes each session's QoE
    under a content digest of (video, trace samples, policy identity +
    weights, QoE weights, ``chunk_indexed``, schema version) -- see
    :mod:`repro.exec`.  ``batch_size`` >= 1 plays the sessions through the
    lockstep :class:`~repro.abr.batched.BatchedSessionEngine` instead of
    one ``run_session`` per task (``0``/default: the exact serial path;
    ``None`` honours ``$REPRO_BATCH_SIZE``); it composes with ``workers``
    (each worker task advances one batch of lanes) and with ``cache``
    (per-session keys are batch-width independent).  Results are
    identical to the serial uncached loop in all modes; evaluation of
    *stochastic* policies under ``workers`` or ``batch_size`` is the one
    unsupported combination (workers would snapshot, and batch lanes
    would re-seed, the policy's generator).  ``recorder`` receives
    per-protocol evaluation timings and the cache's hit/miss counters
    (``eval/``, ``cache/``).
    """
    if not traces:
        raise ValueError("empty trace corpus")
    cache = ResultCache.resolve(cache)
    recorder = recorder if recorder is not None else NULL_RECORDER
    batch_size = resolve_batch_size(batch_size)
    results: dict[str, list[float]] = {}
    with as_runner(workers, recorder=recorder) as runner:
        for name, policy in protocols.items():
            with recorder.timer("eval/protocol_seconds", protocol=name,
                                traces=len(traces), batch_size=batch_size):
                if batch_size >= 1:
                    results[name] = _batched_protocol_qoe(
                        video, traces, policy, weights, chunk_indexed,
                        batch_size, runner, cache, recorder,
                    )
                    continue
                tasks = [(video, t, policy, weights, chunk_indexed) for t in traces]
                keys = None
                if cache is not None:
                    keys = [
                        _session_key(video, t, policy, weights, chunk_indexed)
                        for t in traces
                    ]
                results[name] = cached_map(
                    _session_qoe_task, tasks, runner, cache=cache, keys=keys
                )
    if cache is not None:
        cache.record_metrics(recorder)
    return results


@dataclass
class AbrCdfExperiment:
    """Figure 1 + Figure 2 data: QoE per protocol per trace corpus."""

    #: corpus name -> protocol name -> per-trace mean QoE.
    qoe: dict[str, dict[str, list[float]]]
    #: Figure 2 rows, keyed by (other, targeted, corpus).
    ratios: dict[tuple[str, str, str], QoERatioSummary] = field(default_factory=dict)


def run_abr_cdf_experiment(
    video: Video,
    corpora: Mapping[str, list[Trace]],
    protocols: Mapping[str, AbrPolicy],
    ratio_pairs: list[tuple[str, str, str]],
    chunk_indexed: bool = True,
    workers: "int | ParallelMap | None" = None,
    cache: "ResultCache | str | bool | None" = None,
    recorder: MetricsRecorder | None = None,
    batch_size: int | None = None,
) -> AbrCdfExperiment:
    """Evaluate all protocols on all corpora and summarize QoE ratios.

    ``ratio_pairs`` lists ``(other, targeted, corpus)`` triples, e.g.
    ``("pensieve", "mpc", "anti-mpc")`` reproduces the "Pensieve/MPC on
    MPC traces" bar of Figure 2.  ``workers``/``cache``/``batch_size``
    parallelize, memoize and batch the sessions (one persistent pool
    spans every corpus); see :func:`evaluate_protocols`.  ``recorder``
    receives per-corpus timings plus the evaluation-layer metrics.
    """
    # Resolve once so the env-var default is not re-read (and a ``False``
    # is not re-interpreted) by the per-corpus calls.
    cache = ResultCache.resolve(cache)
    if cache is None:
        cache = False
    recorder = recorder if recorder is not None else NULL_RECORDER
    batch_size = resolve_batch_size(batch_size)
    with as_runner(workers, recorder=recorder) as runner:
        qoe = {}
        for corpus_name, traces in corpora.items():
            with recorder.timer("experiment/corpus_seconds",
                                corpus=corpus_name):
                qoe[corpus_name] = evaluate_protocols(
                    video, traces, protocols, chunk_indexed,
                    workers=runner, cache=cache, recorder=recorder,
                    batch_size=batch_size,
                )
    experiment = AbrCdfExperiment(qoe=qoe)
    for other, targeted, corpus_name in ratio_pairs:
        experiment.ratios[(other, targeted, corpus_name)] = qoe_ratio_summary(
            qoe[corpus_name][other], qoe[corpus_name][targeted]
        )
    return experiment


@dataclass
class BbWeaknessExperiment:
    """Figure 3 data: BB vs the offline optimum on one adversarial trace."""

    trace: Trace
    bb_bitrates_kbps: list[float]
    bb_buffers_s: list[float]
    bb_qoe_total: float
    bb_switches: int
    optimal_bitrates_kbps: list[float]
    optimal_qoe_total: float
    optimal_switches: int
    fraction_in_switching_band: float


def run_bb_weakness_experiment(
    video: Video,
    trace: Trace,
    bb_policy,
    weights: QoEWeights = QoEWeights(),
) -> BbWeaknessExperiment:
    """Replay an anti-BB adversarial trace and overlay the offline optimum."""
    result = run_session(video, trace, bb_policy, weights=weights, chunk_indexed=True)
    opt_total, opt_plan = optimal_plan_dp(
        video, trace.bandwidths_mbps[: video.n_chunks], weights=weights
    )
    lo, hi = bb_policy.switching_band
    in_band = np.mean([lo <= b < hi for b in result.buffer_seconds])
    opt_bitrates = [float(video.bitrates_kbps[q]) for q in opt_plan]
    return BbWeaknessExperiment(
        trace=trace,
        bb_bitrates_kbps=result.bitrates_kbps,
        bb_buffers_s=result.buffer_seconds,
        bb_qoe_total=result.qoe_total,
        bb_switches=int(np.count_nonzero(np.diff(result.bitrates_kbps))),
        optimal_bitrates_kbps=opt_bitrates,
        optimal_qoe_total=opt_total,
        optimal_switches=int(np.count_nonzero(np.diff(opt_bitrates))),
        fraction_in_switching_band=float(in_band),
    )


@dataclass
class RobustnessExperiment:
    """Figure 4 data: mean and 5th-percentile QoE per variant and test set.

    ``qoe[variant][test_set] = (mean, p5)`` with variants ``"without"``,
    ``"adv@90%"``, ``"adv@70%"``.
    """

    train_set: str
    qoe: dict[str, dict[str, tuple[float, float]]]
    adversarial_trace_count: dict[str, int]


def run_robustness_experiment(
    video: Video,
    train_corpus: list[Trace],
    test_sets: Mapping[str, list[Trace]],
    train_set_name: str,
    total_steps: int = 100_000,
    adversary_steps: int = 50_000,
    n_adversarial_traces: int = 30,
    switch_fractions: tuple[float, ...] = (0.7, 0.9),
    seed: int = 0,
    pensieve_config: PPOConfig | None = None,
    adversary_config: PPOConfig | None = None,
    n_envs: int = 1,
    vec_backend: str = "sync",
    trace_seed: int | None = None,
    workers: "int | ParallelMap | None" = None,
    cache: "ResultCache | str | bool | None" = None,
    recorder: MetricsRecorder | None = None,
    batch_size: int | None = None,
) -> RobustnessExperiment:
    """The Figure 4 pipeline with a shared training prefix.

    Trains one Pensieve along the original corpus, snapshotting at each
    switch fraction; each snapshot forks into an adversarially augmented
    continuation, while the main line finishes unmodified ("Without Adv.").

    ``n_envs`` parallelizes the adversary trainings' rollout collection
    and ``vec_backend`` picks the collector: in-process (``"sync"``),
    worker-process (``"subproc"``), or the fully vectorized ``"batched"``
    backend that serves the frozen Pensieve target with one batched
    forward per step -- all bitwise-identical
    (see :func:`~repro.adversary.abr_env.train_abr_adversary`); setting
    ``trace_seed`` makes each generated adversarial trace independently
    reproducible instead of depending on the adversary trainer's leftover
    generator state.

    ``workers``/``cache``/``batch_size`` accelerate the evaluation
    sessions -- the part of the pipeline that replays every variant over
    every test set -- via :func:`evaluate_protocols`, and (with
    ``trace_seed`` set, which makes rollouts independent) ``workers`` and
    ``batch_size`` also parallelize adversarial trace generation.  None
    of them changes any result.
    """
    fractions = sorted(switch_fractions)
    if any(not 0.0 < f < 1.0 for f in fractions):
        raise ValueError("switch fractions must be in (0, 1)")
    cache = ResultCache.resolve(cache)
    if cache is None:
        cache = False
    recorder = recorder if recorder is not None else NULL_RECORDER
    batch_size = resolve_batch_size(batch_size)

    def evaluate(agent, runner) -> dict[str, tuple[float, float]]:
        out = {}
        for name, traces in test_sets.items():
            qoes = evaluate_protocols(
                video, traces, {"agent": agent}, workers=runner, cache=cache,
                recorder=recorder, batch_size=batch_size,
            )["agent"]
            out[name] = (float(np.mean(qoes)), percentile(qoes, 5))
        return out

    snapshots = {}
    steps_done = 0
    line = None
    with recorder.timer("experiment/train_prefix_seconds"):
        for frac in fractions:
            target = int(total_steps * frac)
            if line is None:
                line = train_pensieve(
                    train_corpus, video, total_steps=target, seed=seed,
                    config=copy.deepcopy(pensieve_config),
                )
            else:
                line = continue_training(line, target - steps_done)
            steps_done = target
            snapshots[frac] = copy.deepcopy(line)
            recorder.event("robustness_snapshot", switch_fraction=frac,
                           steps=target)
        baseline = continue_training(line, total_steps - steps_done)

    with as_runner(workers, recorder=recorder) as runner:
        qoe = {"without": evaluate(baseline.agent, runner)}
        trace_counts = {}
        for frac in fractions:
            snapshot = snapshots[frac]
            frozen = copy.deepcopy(snapshot.agent)
            with recorder.timer("experiment/adversary_seconds",
                                switch_fraction=frac):
                adversary = train_abr_adversary(
                    frozen, video, total_steps=adversary_steps, seed=seed + 17,
                    config=copy.deepcopy(adversary_config), n_envs=n_envs,
                    vec_backend=vec_backend, recorder=recorder,
                )
            rolls = generate_abr_traces(
                adversary.trainer, adversary.env, n_adversarial_traces,
                seed=trace_seed,
                workers=runner if trace_seed is not None else 0,
                batch_size=batch_size if trace_seed is not None else 0,
            )
            with recorder.timer("experiment/robust_arm_seconds",
                                switch_fraction=frac):
                robust = continue_training(
                    snapshot,
                    total_steps - int(total_steps * frac),
                    new_traces=[r.trace for r in rolls],
                )
            label = f"adv@{int(frac * 100)}%"
            qoe[label] = evaluate(robust.agent, runner)
            trace_counts[label] = len(rolls)
    return RobustnessExperiment(
        train_set=train_set_name, qoe=qoe, adversarial_trace_count=trace_counts
    )
