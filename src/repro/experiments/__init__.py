"""End-to-end experiment runners for the paper's tables and figures.

Each function reproduces one evaluation artifact and returns a structured
result; the ``benchmarks/`` suite wraps these in pytest-benchmark targets
and renders the tables/CDF plots, and the ``examples/`` scripts reuse
them at smaller scale.
"""

from repro.experiments.abr_suite import (
    AbrCdfExperiment,
    BbWeaknessExperiment,
    RobustnessExperiment,
    evaluate_protocols,
    run_abr_cdf_experiment,
    run_bb_weakness_experiment,
    run_robustness_experiment,
)
from repro.experiments.cc_suite import (
    BbrAdversarialExperiment,
    run_bbr_adversarial_experiment,
)

__all__ = [
    "AbrCdfExperiment",
    "BbWeaknessExperiment",
    "BbrAdversarialExperiment",
    "RobustnessExperiment",
    "evaluate_protocols",
    "run_abr_cdf_experiment",
    "run_bb_weakness_experiment",
    "run_bbr_adversarial_experiment",
    "run_robustness_experiment",
]
