"""First-order optimizers operating on lists of parameter arrays in place."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["Adam", "Optimizer", "RMSProp", "SGD", "clip_grad_norm"]


def clip_grad_norm(grads: Sequence[np.ndarray], max_norm: float) -> float:
    """Scale ``grads`` in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging).
    """
    total = float(np.sqrt(sum(float(np.sum(g * g)) for g in grads)))
    if max_norm > 0.0 and total > max_norm:
        scale = max_norm / (total + 1e-12)
        for g in grads:
            g *= scale
    return total


class Optimizer:
    """Base class: pairs parameter arrays with gradient arrays."""

    def __init__(self, params: Sequence[np.ndarray], lr: float) -> None:
        if lr <= 0.0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr

    def step(self, grads: Sequence[np.ndarray]) -> None:
        raise NotImplementedError

    def _check(self, grads: Sequence[np.ndarray]) -> None:
        if len(grads) != len(self.params):
            raise ValueError(f"expected {len(self.params)} gradient arrays, got {len(grads)}")


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Sequence[np.ndarray], lr: float, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in self.params]

    def step(self, grads: Sequence[np.ndarray]) -> None:
        self._check(grads)
        for p, g, v in zip(self.params, grads, self._velocity):
            v *= self.momentum
            v -= self.lr * g
            p += v


class RMSProp(Optimizer):
    """RMSProp as used by the original A3C Pensieve implementation."""

    def __init__(
        self,
        params: Sequence[np.ndarray],
        lr: float,
        decay: float = 0.99,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        self.decay = decay
        self.eps = eps
        self._sq = [np.zeros_like(p) for p in self.params]

    def step(self, grads: Sequence[np.ndarray]) -> None:
        self._check(grads)
        for p, g, s in zip(self.params, grads, self._sq):
            s *= self.decay
            s += (1.0 - self.decay) * g * g
            p -= self.lr * g / (np.sqrt(s) + self.eps)


class Adam(Optimizer):
    """Adam (Kingma & Ba), the stable-baselines PPO default."""

    def __init__(
        self,
        params: Sequence[np.ndarray],
        lr: float,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in self.params]
        self._v = [np.zeros_like(p) for p in self.params]
        self._t = 0

    def step(self, grads: Sequence[np.ndarray]) -> None:
        self._check(grads)
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(self.params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
