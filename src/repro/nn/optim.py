"""First-order optimizers operating on parameter arrays in place.

Every optimizer keeps the historical list-of-arrays API, but each update
is now a *fused in-place pass*: scalar ufuncs with explicit ``out=``
targets into persistent scratch, allocating nothing in steady state.
Callers that pack their parameters into one flat buffer (see
:meth:`repro.nn.network.MLP.pack_into` and
``ActorCritic.flat_params``) pass ``[flat_params]``/``[flat_grads]`` and
get a single pass over one contiguous array with one first-moment and
one second-moment buffer -- no per-array Python loop at all.  That is
how :class:`repro.rl.ppo.PPO` drives :class:`Adam`.

The fused op order replicates the historical expressions exactly
(e.g. Adam's ``v += (1 - beta2) * g * g`` multiplies the scalar into
``g`` first, then by ``g`` again), so updates are bitwise identical to
the allocating implementation.

:func:`clip_grad_norm_flat` is the flat-buffer companion of
:func:`clip_grad_norm`: one squared pass over the flat gradient, with
the reduction *segmented per parameter array in layer order* so the norm
accumulates in exactly the historical float order.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "Adam",
    "Optimizer",
    "RMSProp",
    "SGD",
    "clip_grad_norm",
    "clip_grad_norm_flat",
]


def clip_grad_norm(grads: Sequence[np.ndarray], max_norm: float) -> float:
    """Scale ``grads`` in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging).
    """
    total = float(np.sqrt(sum(float(np.sum(g * g)) for g in grads)))
    if max_norm > 0.0 and total > max_norm:
        scale = max_norm / (total + 1e-12)
        for g in grads:
            g *= scale
    return total


def clip_grad_norm_flat(
    flat_grad: np.ndarray,
    max_norm: float,
    segments: Sequence[tuple[int, int]] | None = None,
    scratch: np.ndarray | None = None,
    segment_views: Sequence[np.ndarray] | None = None,
) -> float:
    """Clip one flat gradient vector in place; returns the pre-clip norm.

    Equivalent to :func:`clip_grad_norm` over the per-array views of
    ``flat_grad``: the squared values are reduced segment by segment (in
    the given order) and accumulated as Python floats, reproducing the
    historical per-layer summation order bit for bit -- ``np.sum`` over a
    contiguous 1-D segment pairwise-sums the same element sequence as
    over the original 2-D array.  With ``segments=None`` the whole vector
    is one segment (a different -- still deterministic -- float order; do
    not mix the two on the same training run).

    ``scratch`` is an optional caller-owned buffer of ``flat_grad``'s
    shape receiving the squared values, making the call allocation-free.
    A steady-state caller may additionally pass ``segment_views`` --
    precomputed per-segment views *of that same scratch* -- to skip
    re-slicing it on every call (PPO does; see ``PPO.__init__``).
    """
    if scratch is None or scratch.shape != flat_grad.shape:
        scratch = np.empty_like(flat_grad)
        segment_views = None
    np.multiply(flat_grad, flat_grad, out=scratch)
    # np.add.reduce == np.sum bit for bit (np.sum is a wrapper around it);
    # calling the ufunc directly skips ~2 Python frames per segment.
    reduce = np.add.reduce
    if segment_views is not None:
        total = 0.0
        for seg in segment_views:
            total += float(reduce(seg))
    elif segments is None:
        total = float(reduce(scratch))
    else:
        total = 0.0
        for start, stop in segments:
            total += float(reduce(scratch[start:stop]))
    # math.sqrt of a Python float == np.sqrt bit for bit (both are the
    # correctly-rounded IEEE sqrt; math.sqrt(nan) is nan, not an error),
    # minus the scalar-ufunc dispatch.
    total = math.sqrt(total)
    if max_norm > 0.0 and total > max_norm:
        flat_grad *= max_norm / (total + 1e-12)
    return total


class Optimizer:
    """Base class: pairs parameter arrays with gradient arrays."""

    def __init__(self, params: Sequence[np.ndarray], lr: float) -> None:
        if lr <= 0.0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr

    def step(self, grads: Sequence[np.ndarray]) -> None:
        raise NotImplementedError

    def _check(self, grads: Sequence[np.ndarray]) -> None:
        if len(grads) != len(self.params):
            raise ValueError(f"expected {len(self.params)} gradient arrays, got {len(grads)}")


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Sequence[np.ndarray], lr: float, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in self.params]
        self._s = [np.empty_like(p) for p in self.params]

    def step(self, grads: Sequence[np.ndarray]) -> None:
        self._check(grads)
        for p, g, v, s in zip(self.params, grads, self._velocity, self._s):
            v *= self.momentum
            np.multiply(g, self.lr, out=s)  # == v -= lr * g, without the temp
            v -= s
            p += v


class RMSProp(Optimizer):
    """RMSProp as used by the original A3C Pensieve implementation."""

    def __init__(
        self,
        params: Sequence[np.ndarray],
        lr: float,
        decay: float = 0.99,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        self.decay = decay
        self.eps = eps
        self._sq = [np.zeros_like(p) for p in self.params]
        self._s1 = [np.empty_like(p) for p in self.params]
        self._s2 = [np.empty_like(p) for p in self.params]

    def step(self, grads: Sequence[np.ndarray]) -> None:
        self._check(grads)
        for p, g, sq, s1, s2 in zip(self.params, grads, self._sq, self._s1, self._s2):
            sq *= self.decay
            # s += (1 - decay) * g * g, left-to-right like the original.
            np.multiply(g, 1.0 - self.decay, out=s1)
            s1 *= g
            sq += s1
            # p -= lr * g / (sqrt(s) + eps)
            np.multiply(g, self.lr, out=s1)
            np.sqrt(sq, out=s2)
            s2 += self.eps
            s1 /= s2
            p -= s1


class Adam(Optimizer):
    """Adam (Kingma & Ba), the stable-baselines PPO default.

    With a single flat parameter buffer this is one fused sweep: one
    ``m``, one ``v``, two scratch vectors, eight ufunc calls -- versus
    the historical ~12 calls *per parameter array* with seven fresh
    temporaries each.
    """

    def __init__(
        self,
        params: Sequence[np.ndarray],
        lr: float,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in self.params]
        self._v = [np.zeros_like(p) for p in self.params]
        self._s1 = [np.empty_like(p) for p in self.params]
        self._s2 = [np.empty_like(p) for p in self.params]
        self._t = 0
        # Cached single-entry ``pairs`` tuple for the flat-buffer caller
        # (rebuilt only if the gradient array's identity changes).
        self._pair1: tuple | None = None

    def step(self, grads: Sequence[np.ndarray]) -> None:
        self._check(grads)
        self._t += 1
        lr, beta1, beta2, eps = self.lr, self.beta1, self.beta2, self.eps
        bc1 = 1.0 - beta1**self._t
        bc2 = 1.0 - beta2**self._t
        if len(self.params) == 1:  # flat-buffer caller: skip the zip machinery
            pairs = self._pair1
            if pairs is None or pairs[0][1] is not grads[0]:
                self._pair1 = pairs = ((self.params[0], grads[0], self._m[0],
                                        self._v[0], self._s1[0], self._s2[0]),)
        else:
            pairs = zip(self.params, grads, self._m, self._v, self._s1, self._s2)
        for p, g, m, v, s1, s2 in pairs:
            m *= beta1
            np.multiply(g, 1.0 - beta1, out=s1)  # m += (1-b1) * g
            m += s1
            v *= beta2
            np.multiply(g, 1.0 - beta2, out=s1)  # v += (1-b2) * g * g
            s1 *= g
            v += s1
            # p -= lr * (m / bc1) / (sqrt(v / bc2) + eps)
            np.divide(m, bc1, out=s1)
            s1 *= lr
            np.divide(v, bc2, out=s2)
            np.sqrt(s2, out=s2)
            s2 += eps
            s1 /= s2
            p -= s1
