"""Action distributions with analytic gradients for policy-gradient training.

Both distributions expose the quantities PPO needs:

- ``sample`` / ``mode`` -- draw actions (or the deterministic action; the
  paper's Figure 6 uses the deterministic actions "before exploration noise
  from training is added"),
- ``log_prob`` -- per-sample log likelihood of given actions,
- ``entropy`` -- per-sample entropy,
- ``log_prob_grad`` / ``entropy_grad`` -- gradients of those quantities with
  respect to the distribution's *inputs* (logits, or mean and log-std), so
  that the PPO loss can be backpropagated through the policy network.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Categorical", "DiagGaussian"]


def _softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=-1, keepdims=True)
    return z - np.log(np.exp(z).sum(axis=-1, keepdims=True))


class Categorical:
    """A batch of categorical distributions parameterized by logits ``(n, k)``."""

    def __init__(self, logits: np.ndarray) -> None:
        self.logits = np.atleast_2d(np.asarray(logits, dtype=float))
        self.probs = _softmax(self.logits)
        self._log_probs = _log_softmax(self.logits)

    @property
    def n_actions(self) -> int:
        return self.logits.shape[-1]

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one action per row using the Gumbel-max trick."""
        gumbel = -np.log(-np.log(rng.uniform(size=self.logits.shape) + 1e-12) + 1e-12)
        return np.argmax(self.logits + gumbel, axis=-1)

    def mode(self) -> np.ndarray:
        return np.argmax(self.logits, axis=-1)

    def log_prob(self, actions: np.ndarray) -> np.ndarray:
        actions = np.asarray(actions, dtype=int)
        return self._log_probs[np.arange(self.logits.shape[0]), actions]

    def entropy(self) -> np.ndarray:
        return -(self.probs * self._log_probs).sum(axis=-1)

    def log_prob_grad(self, actions: np.ndarray) -> np.ndarray:
        """d log p(a) / d logits = onehot(a) - softmax(logits)."""
        actions = np.asarray(actions, dtype=int)
        grad = -self.probs.copy()
        grad[np.arange(self.logits.shape[0]), actions] += 1.0
        return grad

    def entropy_grad(self) -> np.ndarray:
        """d H / d logits_j = -p_j (log p_j + H)."""
        ent = self.entropy()[:, None]
        return -self.probs * (self._log_probs + ent)

    def kl(self, other: "Categorical") -> np.ndarray:
        """KL(self || other) per row."""
        return (self.probs * (self._log_probs - other._log_probs)).sum(axis=-1)


class DiagGaussian:
    """Diagonal Gaussian over continuous actions.

    ``mean`` has shape ``(n, d)``; ``log_std`` has shape ``(d,)`` and is a
    state-independent learned parameter (the stable-baselines convention
    for PPO continuous policies, which the paper's adversaries use).
    """

    LOG_2PI = float(np.log(2.0 * np.pi))

    def __init__(self, mean: np.ndarray, log_std: np.ndarray) -> None:
        self.mean = np.atleast_2d(np.asarray(mean, dtype=float))
        self.log_std = np.asarray(log_std, dtype=float)
        if self.log_std.ndim != 1 or self.log_std.shape[0] != self.mean.shape[1]:
            raise ValueError(
                f"log_std shape {self.log_std.shape} incompatible with mean {self.mean.shape}"
            )
        self.std = np.exp(self.log_std)

    @property
    def dim(self) -> int:
        return self.mean.shape[1]

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return self.mean + self.std * rng.standard_normal(self.mean.shape)

    def mode(self) -> np.ndarray:
        return self.mean.copy()

    def log_prob(self, actions: np.ndarray) -> np.ndarray:
        actions = np.atleast_2d(np.asarray(actions, dtype=float))
        z = (actions - self.mean) / self.std
        return (-0.5 * z * z - self.log_std - 0.5 * self.LOG_2PI).sum(axis=-1)

    def entropy(self) -> np.ndarray:
        per_dim = self.log_std + 0.5 * (1.0 + self.LOG_2PI)
        return np.full(self.mean.shape[0], float(per_dim.sum()))

    def log_prob_grad(self, actions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(d logp / d mean, d logp / d log_std)``.

        The mean gradient is per-sample ``(n, d)``; the log-std gradient is
        per-sample as well (summed by the caller over the batch).
        """
        actions = np.atleast_2d(np.asarray(actions, dtype=float))
        z = (actions - self.mean) / self.std
        return z / self.std, z * z - 1.0

    def entropy_grad(self) -> np.ndarray:
        """d H / d log_std = 1 for each dimension (per sample)."""
        return np.ones((self.mean.shape[0], self.dim))

    def kl(self, other: "DiagGaussian") -> np.ndarray:
        """KL(self || other) per row."""
        var, ovar = self.std**2, other.std**2
        term = (var + (self.mean - other.mean) ** 2) / (2.0 * ovar)
        return (other.log_std - self.log_std + term - 0.5).sum(axis=-1)
