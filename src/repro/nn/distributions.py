"""Action distributions with analytic gradients for policy-gradient training.

Both distributions expose the quantities PPO needs:

- ``sample`` / ``mode`` -- draw actions (or the deterministic action; the
  paper's Figure 6 uses the deterministic actions "before exploration noise
  from training is added"),
- ``log_prob`` -- per-sample log likelihood of given actions,
- ``entropy`` -- per-sample entropy,
- ``log_prob_grad`` / ``entropy_grad`` -- gradients of those quantities with
  respect to the distribution's *inputs* (logits, or mean and log-std), so
  that the PPO loss can be backpropagated through the policy network.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Categorical", "DiagGaussian"]

_F64 = np.dtype(np.float64)


def _scratch_buf(scratch: dict | None, name: str, shape: tuple) -> np.ndarray:
    """Fetch (or grow) a named scratch array from a caller-owned dict.

    The PPO hot loop builds a fresh distribution every minibatch; routing
    the per-call output arrays through one persistent dict (owned by
    :class:`~repro.rl.policy.ActorCritic`) makes ``log_prob`` /
    ``log_prob_grad`` / ``entropy`` allocation-free in steady state.
    Arrays handed out this way are only valid until the next call that
    uses the same scratch dict -- callers that keep results must copy.
    """
    buf = scratch.get(name)
    if buf is None or buf.shape != shape:
        scratch[name] = buf = np.empty(shape)
    return buf


def _softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=-1, keepdims=True)
    return z - np.log(np.exp(z).sum(axis=-1, keepdims=True))


class Categorical:
    """A batch of categorical distributions parameterized by logits ``(n, k)``.

    ``logits`` is referenced without copy when already a 2-D float array
    -- in training it aliases the policy network's output scratch, which
    is valid for this distribution's lifetime (the next forward of the
    same network builds a new distribution).  Softmax and log-softmax
    share one shifted/exponentiated pass; the shared intermediates are
    bitwise identical to computing each separately, one ``max`` and one
    ``exp`` sweep cheaper.
    """

    def __init__(self, logits: np.ndarray) -> None:
        if not (type(logits) is np.ndarray and logits.dtype is _F64
                and logits.ndim == 2):
            logits = np.atleast_2d(np.asarray(logits, dtype=float))
        self.logits = logits
        z = self.logits - self.logits.max(axis=-1, keepdims=True)
        e = np.exp(z)
        se = e.sum(axis=-1, keepdims=True)
        e /= se
        self.probs = e
        np.log(se, out=se)
        z -= se
        self._log_probs = z

    @property
    def n_actions(self) -> int:
        return self.logits.shape[-1]

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one action per row using the Gumbel-max trick."""
        gumbel = -np.log(-np.log(rng.uniform(size=self.logits.shape) + 1e-12) + 1e-12)
        return np.argmax(self.logits + gumbel, axis=-1)

    def mode(self) -> np.ndarray:
        return np.argmax(self.logits, axis=-1)

    def log_prob(self, actions: np.ndarray) -> np.ndarray:
        actions = np.asarray(actions, dtype=int)
        return self._log_probs[np.arange(self.logits.shape[0]), actions]

    def entropy(self) -> np.ndarray:
        return -(self.probs * self._log_probs).sum(axis=-1)

    def log_prob_grad(self, actions: np.ndarray) -> np.ndarray:
        """d log p(a) / d logits = onehot(a) - softmax(logits)."""
        actions = np.asarray(actions, dtype=int)
        grad = -self.probs.copy()
        grad[np.arange(self.logits.shape[0]), actions] += 1.0
        return grad

    def entropy_grad(self) -> np.ndarray:
        """d H / d logits_j = -p_j (log p_j + H)."""
        ent = self.entropy()[:, None]
        return -self.probs * (self._log_probs + ent)

    def kl(self, other: "Categorical") -> np.ndarray:
        """KL(self || other) per row."""
        return (self.probs * (self._log_probs - other._log_probs)).sum(axis=-1)


class DiagGaussian:
    """Diagonal Gaussian over continuous actions.

    ``mean`` has shape ``(n, d)``; ``log_std`` has shape ``(d,)`` and is a
    state-independent learned parameter (the stable-baselines convention
    for PPO continuous policies, which the paper's adversaries use).
    """

    LOG_2PI = float(np.log(2.0 * np.pi))

    def __init__(
        self,
        mean: np.ndarray,
        log_std: np.ndarray,
        scratch: dict | None = None,
    ) -> None:
        # Fast identity when the caller hands in ready 2-D float64 arrays
        # (the policy network's output scratch on the training path).
        if not (type(mean) is np.ndarray and mean.dtype is _F64 and mean.ndim == 2):
            mean = np.atleast_2d(np.asarray(mean, dtype=float))
        self.mean = mean
        if not (type(log_std) is np.ndarray and log_std.dtype is _F64):
            log_std = np.asarray(log_std, dtype=float)
        self.log_std = log_std
        if log_std.ndim != 1 or log_std.shape[0] != mean.shape[1]:
            raise ValueError(
                f"log_std shape {log_std.shape} incompatible with mean {mean.shape}"
            )
        self._scratch = scratch
        if scratch is None:
            self.std = np.exp(log_std)
        else:
            self.std = std = _scratch_buf(scratch, "std", log_std.shape)
            np.exp(log_std, out=std)
        # z-score cache shared by log_prob / log_prob_grad: PPO calls both
        # on the same actions array every minibatch; keying on the array's
        # identity makes the reuse safe (any other array recomputes).
        self._z: np.ndarray | None = None
        self._z_for: np.ndarray | None = None

    @property
    def dim(self) -> int:
        return self.mean.shape[1]

    def refresh(self) -> "DiagGaussian":
        """Recompute derived state after ``mean``/``log_std`` were
        overwritten in place (same arrays, new values) -- lets a training
        loop reuse one distribution object per minibatch instead of
        rebuilding it.  Bitwise the constructor's work: one ``exp`` into
        the existing ``std`` buffer plus a z-cache invalidation.
        """
        np.exp(self.log_std, out=self.std)
        self._z = None
        self._z_for = None
        return self

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return self.mean + self.std * rng.standard_normal(self.mean.shape)

    def mode(self) -> np.ndarray:
        return self.mean.copy()

    def _bufs(self, n: int, d: int) -> tuple:
        """One bundle of every per-batch scratch array this class uses.

        A single dict lookup and shape check hands back all of them --
        cheaper than one :func:`_scratch_buf` round trip per array when
        the PPO hot loop calls ``log_prob`` / ``log_prob_grad`` /
        ``entropy`` every minibatch.  Layout:
        ``(z, lp_t, lp_t_cols, lp, g_mean, g_ls, ent)``; the column
        views of ``lp_t`` ride along so the d <= 7 row-sum fast path
        never re-slices.
        """
        scratch = self._scratch
        bufs = scratch.get("dg")
        if bufs is None or bufs[0].shape[0] != n or bufs[0].shape[1] != d:
            lp_t = np.empty((n, d))
            bufs = (
                np.empty((n, d)), lp_t,
                tuple(lp_t[:, j] for j in range(d)),
                np.empty(n), np.empty((n, d)), np.empty((n, d)), np.empty(n),
            )
            scratch["dg"] = bufs
        return bufs

    def _zscore(self, actions: np.ndarray) -> np.ndarray:
        key = actions if isinstance(actions, np.ndarray) else None
        if self._z is not None and self._z_for is key and key is not None:
            return self._z
        if not (type(actions) is np.ndarray and actions.dtype is _F64
                and actions.ndim == 2):
            actions = np.atleast_2d(np.asarray(actions, dtype=float))
        if self._scratch is None:
            z = (actions - self.mean) / self.std
        else:
            # Same two ufuncs as ``(actions - mean) / std``, into scratch.
            z = self._bufs(*actions.shape)[0]
            np.subtract(actions, self.mean, out=z)
            z /= self.std
        self._z = z
        self._z_for = key
        return z

    def log_prob(self, actions: np.ndarray) -> np.ndarray:
        z = self._zscore(actions)
        if self._scratch is None:
            return np.add.reduce(
                -0.5 * z * z - self.log_std - 0.5 * self.LOG_2PI, axis=-1
            )
        # The allocating expression above, ufunc by ufunc (same order, so
        # bitwise identical), through persistent scratch.
        _, t, cols, out = self._bufs(*z.shape)[:4]
        np.multiply(-0.5, z, out=t)
        t *= z
        t -= self.log_std
        t -= 0.5 * self.LOG_2PI
        d = t.shape[1]
        if d == 1:
            np.copyto(out, cols[0])
            return out
        if d <= 7:
            # Row sums spelled as sequential column adds: numpy's
            # pairwise reduction is plain left-to-right below 8 addends,
            # so this is bitwise ``np.add.reduce(t, axis=-1)`` minus the
            # reduction machinery (d >= 8 switches to the unrolled
            # pairwise core and would differ -- verified empirically,
            # see tests/test_flat_identity.py).
            np.add(cols[0], cols[1], out=out)
            for j in range(2, d):
                out += cols[j]
            return out
        return np.add.reduce(t, axis=-1, out=out)

    def entropy(self) -> np.ndarray:
        scratch = self._scratch
        c = 0.5 * (1.0 + self.LOG_2PI)
        if scratch is None:
            per_dim = self.log_std + c
            return np.full(self.mean.shape[0], float(np.add.reduce(per_dim)))
        ls = self.log_std
        d = ls.shape[0]
        ent = self._bufs(self.mean.shape[0], d)[6]
        if d <= 7:
            # Scalar replication of ``reduce(log_std + c)``: each
            # ``ls[j] + c`` is the same IEEE add the elementwise ufunc
            # performs, and below 8 addends numpy's reduce is plain
            # left-to-right (same gate as in :meth:`log_prob`), so the
            # running scalar sum is bitwise the array reduction.
            total = ls[0] + c
            for j in range(1, d):
                total = total + (ls[j] + c)
            ent.fill(float(total))
            return ent
        per_dim = _scratch_buf(scratch, "ent_pd", ls.shape)
        np.add(ls, c, out=per_dim)
        ent.fill(float(np.add.reduce(per_dim)))
        return ent

    def log_prob_grad(self, actions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(d logp / d mean, d logp / d log_std)``.

        The mean gradient is per-sample ``(n, d)``; the log-std gradient is
        per-sample as well (summed by the caller over the batch).
        """
        z = self._zscore(actions)
        if self._scratch is None:
            return z / self.std, z * z - 1.0
        g_mean, g_ls = self._bufs(*z.shape)[4:6]
        np.divide(z, self.std, out=g_mean)
        np.multiply(z, z, out=g_ls)
        g_ls -= 1.0
        return g_mean, g_ls

    def entropy_grad(self) -> np.ndarray:
        """d H / d log_std = 1 for each dimension (per sample)."""
        return np.ones((self.mean.shape[0], self.dim))

    def kl(self, other: "DiagGaussian") -> np.ndarray:
        """KL(self || other) per row."""
        var, ovar = self.std**2, other.std**2
        term = (var + (self.mean - other.mean) ** 2) / (2.0 * ovar)
        return (other.log_std - self.log_std + term - 0.5).sum(axis=-1)
