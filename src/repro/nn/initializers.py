"""Weight initialization schemes for dense layers."""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_uniform", "orthogonal", "zeros"]


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Xavier/Glorot uniform initialization, suited to tanh networks."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He uniform initialization, suited to ReLU networks."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def orthogonal(
    rng: np.random.Generator, fan_in: int, fan_out: int, gain: float = 1.0
) -> np.ndarray:
    """Orthogonal initialization (the stable-baselines default for policies).

    The returned matrix has orthonormal rows or columns (whichever is
    shorter), scaled by ``gain``.
    """
    a = rng.standard_normal((fan_in, fan_out))
    u, _, vt = np.linalg.svd(a, full_matrices=False)
    q = u if u.shape == (fan_in, fan_out) else vt
    return gain * q


def zeros(_rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """All-zeros initialization (used for bias vectors and final layers)."""
    return np.zeros((fan_in, fan_out))
