"""The :class:`MLP` container: a stack of Dense layers with activations."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layers import Activation, Dense

__all__ = ["MLP"]


class MLP:
    """A multi-layer perceptron with explicit forward/backward passes.

    Parameters
    ----------
    sizes:
        Layer widths including input and output, e.g. ``(10, 32, 16, 6)``.
    activation:
        Hidden-layer activation name (``tanh`` by default, matching the
        stable-baselines MlpPolicy the paper used).
    out_activation:
        Activation applied to the final layer (``linear`` by default).
    rng:
        Source of initialization randomness.
    out_gain:
        Orthogonal-init gain for the final layer.  Policy heads commonly
        use a small gain (0.01) so that initial policies are near-uniform.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        rng: np.random.Generator,
        activation: str = "tanh",
        out_activation: str = "linear",
        out_gain: float = 0.01,
    ) -> None:
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        self.sizes = tuple(int(s) for s in sizes)
        self._stack: list[Dense | Activation] = []
        for i, (fan_in, fan_out) in enumerate(zip(self.sizes[:-1], self.sizes[1:])):
            last = i == len(self.sizes) - 2
            gain = out_gain if last else np.sqrt(2.0)
            self._stack.append(Dense(fan_in, fan_out, rng, gain=gain))
            self._stack.append(Activation(out_activation if last else activation))

    @property
    def in_dim(self) -> int:
        return self.sizes[0]

    @property
    def out_dim(self) -> int:
        return self.sizes[-1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the network on a batch ``(n, in_dim)`` and return ``(n, out_dim)``.

        A 2-D float64 array is used as-is (no copy) -- this is the shape
        every ``predict`` call in a trace rollout already supplies, so the
        conversion below only runs for lists, scalars-in-1-D and other
        dtypes.
        """
        if not (isinstance(x, np.ndarray) and x.ndim == 2 and x.dtype == np.float64):
            x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.in_dim:
            raise ValueError(f"expected input dim {self.in_dim}, got {x.shape[1]}")
        for layer in self._stack:
            x = layer.forward(x)
        return x

    __call__ = forward

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Backpropagate ``dLoss/dOutput``; returns ``dLoss/dInput``."""
        for layer in reversed(self._stack):
            dout = layer.backward(dout)
        return dout

    def zero_grad(self) -> None:
        for layer in self._stack:
            if isinstance(layer, Dense):
                layer.zero_grad()

    def parameters(self) -> list[np.ndarray]:
        params: list[np.ndarray] = []
        for layer in self._stack:
            if isinstance(layer, Dense):
                params.extend(layer.parameters())
        return params

    def gradients(self) -> list[np.ndarray]:
        grads: list[np.ndarray] = []
        for layer in self._stack:
            if isinstance(layer, Dense):
                grads.extend(layer.gradients())
        return grads

    def get_weights(self) -> list[np.ndarray]:
        """Return copies of all parameter arrays (for checkpointing)."""
        return [p.copy() for p in self.parameters()]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        params = self.parameters()
        if len(weights) != len(params):
            raise ValueError(f"expected {len(params)} arrays, got {len(weights)}")
        for p, w in zip(params, weights):
            if p.shape != w.shape:
                raise ValueError(f"shape mismatch: {p.shape} vs {w.shape}")
            p[:] = w

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __cache_state__(self) -> dict:
        """Identity for content-addressed caching: architecture + weights.

        Cached forward activations and accumulated gradients are run
        artifacts, not identity, so they are deliberately excluded (see
        :func:`repro.exec.cache.fingerprint`).
        """
        return {
            "sizes": self.sizes,
            "layers": [
                layer.name if isinstance(layer, Activation) else "dense"
                for layer in self._stack
            ],
            "weights": self.parameters(),
        }
