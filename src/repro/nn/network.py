"""The :class:`MLP` container: a stack of Dense layers with activations.

All parameters live in **one contiguous flat float64 buffer** (and all
gradients in a second), with each layer's ``W``/``b``/``dW``/``db``
exposed as reshaped views.  That layout is what makes the training hot
path cheap: the optimizer updates every parameter of the network in a
single fused in-place pass over :attr:`MLP.flat_params` /
:attr:`MLP.flat_grads` instead of looping over per-layer arrays, and
gradient clipping reduces one flat vector.

Aliasing rules:

- never rebind ``layer.W`` / ``layer.b`` -- assign through the views
  (``W[...] = new``) or everything sharing the flat buffer silently
  desynchronizes;
- :meth:`MLP.forward` returns a scratch view owned by the final layer,
  valid until the next forward of the same network; copy to keep.

Checkpoints stay **per-layer**: :meth:`get_weights`/:meth:`set_weights`
pack/unpack at the boundary, so ``.npz`` files written before the flat
layout load unchanged (and vice versa).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layers import Activation, Dense

__all__ = ["MLP"]

_F64 = np.dtype(np.float64)


class MLP:
    """A multi-layer perceptron with explicit forward/backward passes.

    Parameters
    ----------
    sizes:
        Layer widths including input and output, e.g. ``(10, 32, 16, 6)``.
    activation:
        Hidden-layer activation name (``tanh`` by default, matching the
        stable-baselines MlpPolicy the paper used).
    out_activation:
        Activation applied to the final layer (``linear`` by default).
    rng:
        Source of initialization randomness.
    out_gain:
        Orthogonal-init gain for the final layer.  Policy heads commonly
        use a small gain (0.01) so that initial policies are near-uniform.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        rng: np.random.Generator,
        activation: str = "tanh",
        out_activation: str = "linear",
        out_gain: float = 0.01,
    ) -> None:
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        self.sizes = tuple(int(s) for s in sizes)
        self.activation = activation
        self.out_activation = out_activation
        self._stack: list[Dense | Activation] = []
        for i, (fan_in, fan_out) in enumerate(zip(self.sizes[:-1], self.sizes[1:])):
            last = i == len(self.sizes) - 2
            gain = out_gain if last else np.sqrt(2.0)
            self._stack.append(Dense(fan_in, fan_out, rng, gain=gain))
            self._stack.append(Activation(out_activation if last else activation))
        self._dense = [layer for layer in self._stack if isinstance(layer, Dense)]
        # (dense, activation) pairs for the unrolled hot loops below; the
        # stack is strictly alternating by construction.
        self._pairs = list(zip(self._stack[0::2], self._stack[1::2]))
        # Batch-size-keyed execution plans: prebound per-layer operand
        # tuples for the steady-state forward/backward loops (see
        # :meth:`_forward_fast`).  Built lazily after a generic pass and
        # invalidated whenever buffers are rebound (:meth:`pack_into`,
        # scratch regrowth, ``share_forward_scratch``).
        self._fplan: list[tuple] | None = None
        self._fplan_n = -1
        self._bplan: list[tuple] | None = None
        self._bplan_n = -1
        n = sum(d.W.size + d.b.size for d in self._dense)
        self.flat_params = np.empty(n)
        self.flat_grads = np.zeros(n)
        #: (start, stop) of every parameter array inside the flat buffer,
        #: in :meth:`parameters` order -- the reduction segments that keep
        #: the flat grad-norm bitwise equal to the per-layer sum order.
        self.param_slices: list[tuple[int, int]] = []
        self.pack_into(self.flat_params, self.flat_grads, 0)

    @property
    def in_dim(self) -> int:
        return self.sizes[0]

    @property
    def out_dim(self) -> int:
        return self.sizes[-1]

    def pack_into(self, flat_params: np.ndarray, flat_grads: np.ndarray, offset: int = 0) -> int:
        """Bind every layer's parameters into views of the given buffers.

        Values are copied in layer order starting at ``offset``; after the
        call :attr:`flat_params`/:attr:`flat_grads` are the (sub)views of
        the supplied buffers covering this network, and
        :attr:`param_slices` holds *absolute* offsets into them.  Lets a
        container (e.g. ``ActorCritic``) pack several networks plus loose
        parameters into one master buffer.  Returns the end offset.
        """
        start = offset
        self._fplan = self._bplan = None
        self._fplan_n = self._bplan_n = -1
        self.param_slices = []
        for layer in self._dense:
            for size in (layer.W.size, layer.b.size):
                self.param_slices.append((offset, offset + size))
                offset += size
        bound = start
        for layer in self._dense:
            bound = layer.bind(flat_params, flat_grads, bound)
        self.flat_params = flat_params[start:offset]
        self.flat_grads = flat_grads[start:offset]
        return offset

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the network on a batch ``(n, in_dim)`` and return ``(n, out_dim)``.

        A 2-D float64 array is used as-is (no copy) -- this is the shape
        every ``predict`` call in a trace rollout already supplies, so the
        conversion below only runs for lists, scalars-in-1-D and other
        dtypes.  The returned array is scratch owned by the final layer:
        valid until this network's next forward, copy to keep.
        """
        if not (type(x) is np.ndarray and x.dtype is _F64 and x.ndim == 2):
            x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.in_dim:
            raise ValueError(f"expected input dim {self.in_dim}, got {x.shape[1]}")
        return self._forward_fast(x)

    def _forward_fast(self, x: np.ndarray) -> np.ndarray:
        """The hot loop of :meth:`forward`, minus input coercion.

        The caller guarantees ``x`` is a float64 matrix of width
        ``in_dim`` (PPO's update loop does; its minibatches are slices of
        preallocated float64 epoch buffers).
        """
        n = x.shape[0]
        if n == self._fplan_n:
            # Plan path: the exact ufunc sequence of the generic loop
            # below on prebound operands -- no shape checks, no
            # per-layer attribute chasing.  Bitwise identical by
            # construction (same ufuncs, same buffers, same order).
            for dense, W, b, y, fwd, act, ay, keep_x in self._fplan:
                dense._x = x
                np.matmul(x, W, out=y)
                y += b
                if fwd is None:  # linear head: identity
                    x = y
                else:
                    fwd(y, ay)
                    act._cached = y if keep_x else ay
                    x = ay
            return x
        # Generic (unrolled) layer loop: same ufunc sequence
        # Dense.forward / Activation.forward would run (the input is
        # always a float64 matrix here), minus two method frames and
        # their re-checks per layer.  Runs once per batch-size change;
        # the plan rebuilt from its final buffer bindings serves every
        # later same-size call.
        for dense, act in self._pairs:
            dense._x = x
            y = dense._y
            if y.shape[0] != n:  # steady state: scratch is exactly n rows
                if y.shape[0] < n:
                    dense._y = y = np.empty((n, dense.W.shape[1]))
                    self._bplan_n = -1  # backward plan caches are stale
                else:
                    y = y[:n]
            np.matmul(x, dense.W, out=y)
            y += dense.b
            fwd = act._fwd
            if fwd is None:  # linear head: identity
                x = y
            else:
                ay = act._y
                if ay.shape != y.shape:
                    if ay.shape[0] < n or ay.shape[1] != y.shape[1]:
                        act._y = ay = np.empty((n, y.shape[1]))
                        self._bplan_n = -1
                    else:
                        ay = ay[:n]
                fwd(y, ay)
                act._cached = y if act._keep == "x" else ay
                x = ay
        self._build_fplan(n)
        return x

    def _build_fplan(self, n: int) -> None:
        plan = []
        for dense, act in self._pairs:
            y = dense._y if dense._y.shape[0] == n else dense._y[:n]
            fwd = act._fwd
            if fwd is None:
                ay = None
            else:
                ay = act._y if act._y.shape[0] == n else act._y[:n]
            plan.append(
                (dense, dense.W, dense.b, y, fwd, act, ay, act._keep == "x")
            )
        self._fplan = plan
        self._fplan_n = n

    __call__ = forward

    def backward(self, dout: np.ndarray, need_input_grad: bool = True) -> np.ndarray | None:
        """Backpropagate ``dLoss/dOutput``; returns ``dLoss/dInput``.

        ``dout`` may be scaled in place by activation layers; pass a copy
        if the caller needs it afterwards (or use
        :meth:`backward_input_grad`, which copies both ways).  With
        ``need_input_grad=False``
        the caller promises not to use the return value, letting the hot
        path skip the first layer's (otherwise dead) input-gradient
        matmul; parameter gradients are unaffected.  The result may then
        be ``None``.
        """
        fast = type(dout) is np.ndarray and dout.dtype is _F64 and dout.ndim == 2
        if fast:
            for dense in self._dense:
                x = dense._x
                if not (type(x) is np.ndarray and x.dtype is _F64 and x.ndim == 2):
                    fast = False
                    break
        if not fast:
            for layer in reversed(self._stack):
                dout = layer.backward(dout)
            return dout
        return self._backward_fast(dout, need_input_grad)

    def _backward_fast(
        self, dout: np.ndarray, need_input_grad: bool = True
    ) -> np.ndarray | None:
        """The hot loop of :meth:`backward`, minus the fast-path probe.

        The caller guarantees ``dout`` and every layer's cached input are
        float64 matrices (true whenever the preceding forward went through
        :meth:`_forward_fast`).
        """
        if not need_input_grad and dout.shape[0] == self._bplan_n:
            # Plan path (mirror of the forward plan): prebound operands,
            # including the ``W.T`` views and the activation caches --
            # which alias the same memory the matching-size forward just
            # wrote, whichever loop ran it.  PPO's update path only ever
            # calls with ``need_input_grad=False``, so the plan covers
            # just that case; the generic loop below handles the rest.
            first = self._pairs[0][0]
            for dense, grad, cached, g, dW, db, gW, gb, dx, WT, k1 in self._bplan:
                if grad is not None:
                    dout = grad(cached, dout, g)
                x = dense._x
                if dense._fresh:
                    np.matmul(x.T, dout, out=dW)
                    np.add.reduce(dout, axis=0, out=db)
                    dense._fresh = False
                else:
                    np.matmul(x.T, dout, out=gW)
                    dW += gW
                    np.add.reduce(dout, axis=0, out=gb)
                    db += gb
                if dense is first:
                    return None
                if k1:
                    np.multiply(dout, WT, out=dx)
                else:
                    np.matmul(dout, WT, out=dx)
                dout = dx
            return dout  # unreachable: the first-layer entry returned above
        # Unrolled mirror of the forward loop (see Dense.backward /
        # Activation.backward for the per-layer semantics being inlined).
        n0 = dout.shape[0]
        first = None if need_input_grad else self._pairs[0][0]
        for dense, act in reversed(self._pairs):
            grad = act._grad
            if grad is not None:
                cached = act._cached
                if cached is None:
                    raise RuntimeError("backward called before forward")
                if act._g.shape != cached.shape:
                    act._g = np.empty(cached.shape)
                dout = grad(cached, dout, act._g)
            x = dense._x
            if dense._fresh:
                np.matmul(x.T, dout, out=dense.dW)
                np.add.reduce(dout, axis=0, out=dense.db)
                dense._fresh = False
            else:
                np.matmul(x.T, dout, out=dense._gW)
                dense.dW += dense._gW
                np.add.reduce(dout, axis=0, out=dense._gb)
                dense.db += dense._gb
            if dense is first:
                self._build_bplan(n0)
                return None
            n = dout.shape[0]
            dx = dense._dx
            if dx.shape[0] != n:
                if dx.shape[0] < n:
                    dense._dx = dx = np.empty((n, dense.W.shape[0]))
                else:
                    dx = dx[:n]
            if dout.shape[1] == 1:
                # k=1 GEMM is an outer product: one multiply per output
                # element, no accumulation, so the broadcast ufunc is
                # bitwise the matmul at a third of its cost (np.matmul
                # takes a slow path on this shape).  This is every
                # backward through a value head.
                np.multiply(dout, dense.W.T, out=dx)
            else:
                np.matmul(dout, dense.W.T, out=dx)
            dout = dx
        return dout

    def backward_input_grad(self, dout: np.ndarray) -> np.ndarray:
        """Backpropagate ``dLoss/dOutput`` and return a *caller-owned* input grad.

        The attack-facing entry point around :meth:`backward`'s two
        documented hazards: activation layers scale ``dout`` in place on
        the fast path (an FGSM/PGD loop that rebuilds its loss gradient
        from a reused array would be silently corrupted across
        iterations), and the returned input gradient is the first layer's
        scratch (overwritten by the next backward of this network).  This
        wrapper copies on the way in and on the way out, so the caller's
        ``dout`` is never mutated and the result survives later passes.

        Parameter gradients still accumulate into ``dW``/``db`` exactly
        as :meth:`backward` does; callers that only want input gradients
        (adversarial-example crafting) should :meth:`zero_grad` before
        the next training use of the network.
        """
        dout = np.array(dout, dtype=float, copy=True, ndmin=2)
        dx = self.backward(dout, need_input_grad=True)
        return np.array(dx, dtype=float, copy=True)

    def _build_bplan(self, n: int) -> None:
        plan = []
        for dense, act in reversed(self._pairs):
            grad = act._grad
            if grad is None:
                cached = g = None
            else:
                y = dense._y if dense._y.shape[0] == n else dense._y[:n]
                ay = act._y if act._y.shape[0] == n else act._y[:n]
                cached = y if act._keep == "x" else ay
                g = act._g
                if g.shape != cached.shape:  # not regrown yet: no plan
                    return
            dx = dense._dx
            if dx.shape[0] != n:
                if dx.shape[0] < n:
                    dx = None  # first layer under need_input_grad=False
                else:
                    dx = dx[:n]
            plan.append(
                (dense, grad, cached, g, dense.dW, dense.db,
                 dense._gW, dense._gb, dx, dense.W.T,
                 dense.W.shape[1] == 1)
            )
        self._bplan = plan
        self._bplan_n = n

    def mark_grads_zero(self) -> None:
        """Tell the layers their gradient views were just zeroed externally
        (e.g. through a master flat buffer), enabling the direct-write
        first backward."""
        for dense in self._dense:
            dense._fresh = True

    def zero_grad(self) -> None:
        self.flat_grads[:] = 0.0
        self.mark_grads_zero()

    def parameters(self) -> list[np.ndarray]:
        params: list[np.ndarray] = []
        for layer in self._dense:
            params.extend(layer.parameters())
        return params

    def gradients(self) -> list[np.ndarray]:
        grads: list[np.ndarray] = []
        for layer in self._dense:
            grads.extend(layer.gradients())
        return grads

    def get_weights(self) -> list[np.ndarray]:
        """Return copies of all parameter arrays (for checkpointing).

        Deliberately per-layer, not flat: the ``.npz`` checkpoint format
        predates the flat buffer and stays compatible in both directions.
        """
        return [p.copy() for p in self.parameters()]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        params = self.parameters()
        if len(weights) != len(params):
            raise ValueError(f"expected {len(params)} arrays, got {len(weights)}")
        for p, w in zip(params, weights):
            if p.shape != w.shape:
                raise ValueError(f"shape mismatch: {p.shape} vs {w.shape}")
            p[:] = w

    def num_parameters(self) -> int:
        return self.flat_params.size

    # -- pickling ------------------------------------------------------------
    #
    # Default pickling would serialize every scratch buffer and, worse,
    # sever the view relationship between layers and the flat buffer
    # (each view pickles as an independent copy).  Serialize the
    # architecture plus per-layer weights instead and rebuild the flat
    # layout on load -- same form as the on-disk checkpoint.

    def __getstate__(self) -> dict:
        return {
            "sizes": self.sizes,
            "activation": self.activation,
            "out_activation": self.out_activation,
            "weights": self.get_weights(),
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["sizes"],
            np.random.default_rng(0),
            activation=state["activation"],
            out_activation=state["out_activation"],
        )
        self.set_weights(state["weights"])

    def __cache_state__(self) -> dict:
        """Identity for content-addressed caching: architecture + weights.

        Cached forward activations and accumulated gradients are run
        artifacts, not identity, so they are deliberately excluded (see
        :func:`repro.exec.cache.fingerprint`).  The weight arrays are the
        per-layer *views* into the flat buffer -- same bytes as the
        pre-flat standalone arrays, so fingerprints are unchanged.
        """
        return {
            "sizes": self.sizes,
            "layers": [
                layer.name if isinstance(layer, Activation) else "dense"
                for layer in self._stack
            ],
            "weights": self.parameters(),
        }
