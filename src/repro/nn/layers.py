"""Dense layers and activation functions with explicit backward passes.

The hot path of every PPO update is a handful of *small* GEMMs and
elementwise passes, so per-call Python and allocator overhead dominates
actual FLOPs.  Both layer types therefore run zero-allocation in steady
state:

- :class:`Dense` writes its forward output, input gradient and parameter
  gradients through preallocated scratch buffers (``np.matmul(...,
  out=)`` / ``np.add(..., out=)``), growing them only when a larger batch
  arrives;
- :class:`Activation` owns a forward scratch and computes its gradient
  *in place into* ``dout`` -- the array a caller passes to
  :meth:`Activation.backward` is mutated and returned.

Aliasing rules (see ``docs/architecture.md``):

- the array returned by :meth:`forward`/:meth:`backward` is a reused
  scratch view, valid until the *next* forward/backward of the same
  layer -- copy it to keep it;
- parameters ``W``/``b`` (and ``dW``/``db``) may be views into a flat
  parameter buffer (see :meth:`Dense.bind`); write through them
  (``W[...] = ...``), never rebind the attributes.

Every rewrite here is bitwise identical to the historical allocating
implementation: the same ufuncs run in the same order on the same
values, only the destination buffers changed.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn import initializers

__all__ = ["ACTIVATIONS", "Activation", "Dense"]


_F64 = np.dtype(np.float64)


def _is_f64_matrix(x) -> bool:
    # ``type is`` / ``dtype is``: subclasses and byte-swapped floats fall
    # through to the (correct, allocating) slow paths; the native case
    # skips the costlier isinstance/dtype-equality protocol.
    return type(x) is np.ndarray and x.dtype is _F64 and x.ndim == 2


class Dense:
    """A fully connected layer ``y = x @ W + b``.

    The layer caches its input on :meth:`forward` so that :meth:`backward`
    can compute parameter gradients.  Gradients accumulate into ``dW`` and
    ``db`` until :meth:`zero_grad` is called, which lets callers combine
    several loss terms.

    ``W``/``b``/``dW``/``db`` start as self-owned arrays; :meth:`bind`
    repoints them at contiguous views of a shared flat parameter/gradient
    buffer so a whole network can be optimized in one fused pass.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        init: str = "orthogonal",
        gain: float = np.sqrt(2.0),
    ) -> None:
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError(f"layer dims must be positive, got {in_dim}x{out_dim}")
        init_fn = {
            "orthogonal": lambda r, i, o: initializers.orthogonal(r, i, o, gain=gain),
            "glorot": initializers.glorot_uniform,
            "he": initializers.he_uniform,
            "zeros": initializers.zeros,
        }[init]
        self.W = init_fn(rng, in_dim, out_dim)
        self.b = np.zeros(out_dim)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None
        # Scratch: forward output, input gradient (grown on demand), and
        # fixed-size matmul targets for the accumulate-into-dW/db step.
        self._y = np.empty((0, out_dim))
        self._dx = np.empty((0, in_dim))
        self._gW = np.empty_like(self.W)
        self._gb = np.empty_like(self.b)
        # True while dW/db are known-zero (fresh from init or zero_grad):
        # the first backward then matmuls straight into them instead of
        # accumulating through scratch.  ``0.0 + g`` and ``g`` agree bit
        # for bit except on the sign of zero entries, and a gradient's
        # zero-sign cannot reach the parameters (Adam/RMSProp/SGD moments
        # square it or add it to +0.0) -- the golden-pinned training
        # fingerprints in the test suite hold either way.
        self._fresh = True

    @property
    def in_dim(self) -> int:
        return self.W.shape[0]

    @property
    def out_dim(self) -> int:
        return self.W.shape[1]

    def bind(self, flat_params: np.ndarray, flat_grads: np.ndarray, offset: int) -> int:
        """Move ``W``/``b`` (and ``dW``/``db``) into views of flat buffers.

        Current values are copied into ``flat_params[offset:]`` /
        ``flat_grads[offset:]`` in ``W``-then-``b`` order (matching
        :meth:`parameters`) and the attributes are rebound to reshaped
        views, so elementwise work on the flat buffers *is* work on the
        layer's parameters.  Returns the offset past this layer.
        """
        for name, gname in (("W", "dW"), ("b", "db")):
            value = getattr(self, name)
            grad = getattr(self, gname)
            end = offset + value.size
            pview = flat_params[offset:end].reshape(value.shape)
            gview = flat_grads[offset:end].reshape(value.shape)
            pview[...] = value
            gview[...] = grad
            setattr(self, name, pview)
            setattr(self, gname, gview)
            offset = end
        return offset

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        if not _is_f64_matrix(x):
            # Odd dtypes / 1-D inputs: the legacy allocating path.
            return x @ self.W + self.b
        n = x.shape[0]
        if self._y.shape[0] < n:
            self._y = np.empty((n, self.out_dim))
        y = self._y[:n]
        np.matmul(x, self.W, out=y)
        y += self.b
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients and return the input gradient."""
        if self._x is None:
            raise RuntimeError("backward called before forward")
        x = self._x
        if not (_is_f64_matrix(dout) and _is_f64_matrix(x)):
            self.dW += x.T @ dout
            self.db += dout.sum(axis=0)
            self._fresh = False
            return dout @ self.W.T
        # np.add.reduce is np.sum without the fromnumeric wrapper -- same
        # pairwise reduction, measurably cheaper at minibatch sizes.
        if self._fresh:
            np.matmul(x.T, dout, out=self.dW)
            np.add.reduce(dout, axis=0, out=self.db)
            self._fresh = False
        else:
            np.matmul(x.T, dout, out=self._gW)
            self.dW += self._gW
            np.add.reduce(dout, axis=0, out=self._gb)
            self.db += self._gb
        n = dout.shape[0]
        if self._dx.shape[0] < n:
            self._dx = np.empty((n, self.in_dim))
        dx = self._dx[:n]
        np.matmul(dout, self.W.T, out=dx)
        return dx

    def zero_grad(self) -> None:
        self.dW[:] = 0.0
        self.db[:] = 0.0
        self._fresh = True

    def parameters(self) -> list[np.ndarray]:
        return [self.W, self.b]

    def gradients(self) -> list[np.ndarray]:
        return [self.dW, self.db]


class Activation:
    """An elementwise activation with a cached-forward backward pass.

    Each activation's gradient depends on exactly one of the forward
    tensors -- tanh and sigmoid on the *output* ``y``, relu on the
    *input* ``x`` -- so only that tensor is retained after
    :meth:`forward`.  ``linear`` is a true pass-through: it returns its
    input unchanged, caches nothing, and its backward returns ``dout``
    untouched.

    :meth:`backward` scales ``dout`` *in place* on the float64 fast path
    and returns it; callers that need the incoming gradient afterwards
    must pass a copy.
    """

    def __init__(self, name: str) -> None:
        if name not in ACTIVATIONS:
            raise ValueError(f"unknown activation {name!r}; choose from {sorted(ACTIVATIONS)}")
        self.name = name
        self._fwd, self._grad, self._keep = ACTIVATIONS[name]
        self._cached: np.ndarray | None = None
        self._y = np.empty((0, 0))
        self._g = np.empty((0, 0))

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self._fwd is None:  # linear: identity, nothing to cache
            return x
        if _is_f64_matrix(x):
            if self._y.shape[0] < x.shape[0] or self._y.shape[1] != x.shape[1]:
                self._y = np.empty(x.shape)
            y = self._y[: x.shape[0]]
            self._fwd(x, y)
        else:
            y = self._fwd(x, None)
        self._cached = x if self._keep == "x" else y
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._grad is None:  # linear: dL/dx == dL/dy, pass straight through
            return dout
        if self._cached is None:
            raise RuntimeError("backward called before forward")
        cached = self._cached
        if _is_f64_matrix(dout) and dout.shape == cached.shape:
            if self._g.shape != cached.shape:
                self._g = np.empty(cached.shape)
            return self._grad(cached, dout, self._g)
        g = np.empty_like(np.asarray(cached, dtype=float))
        return dout * self._grad(cached, None, g)


# -- forward kernels (out=None falls back to allocating) ---------------------


def _tanh(x: np.ndarray, out: np.ndarray | None) -> np.ndarray:
    return np.tanh(x, out=out) if out is not None else np.tanh(x)


def _relu(x: np.ndarray, out: np.ndarray | None) -> np.ndarray:
    return np.maximum(x, 0.0, out=out) if out is not None else np.maximum(x, 0.0)


def _sigmoid(x: np.ndarray, out: np.ndarray | None) -> np.ndarray:
    if out is None:
        out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


# -- gradient kernels --------------------------------------------------------
#
# Each takes (cached_tensor, dout, scratch).  With ``dout`` given it scales
# dout in place and returns it; with ``dout=None`` it writes the local
# gradient into ``scratch`` and returns that (the allocating fallback path
# multiplies afterwards).  The op order matches the historical expressions
# exactly -- e.g. tanh computes ``y*y`` then ``1 - (y*y)`` -- so the fast
# path is bitwise identical to ``dout * (1.0 - y * y)``.


def _tanh_grad(y: np.ndarray, dout: np.ndarray | None, g: np.ndarray) -> np.ndarray:
    np.multiply(y, y, out=g)
    np.subtract(1.0, g, out=g)
    if dout is None:
        return g
    dout *= g
    return dout


def _relu_grad(x: np.ndarray, dout: np.ndarray | None, g: np.ndarray) -> np.ndarray:
    # Multiplying by the boolean mask upcasts it to 0.0/1.0, exactly the
    # historical ``dout * (x > 0.0).astype(x.dtype)``.
    if dout is None:
        return (x > 0.0).astype(np.asarray(x).dtype)
    dout *= x > 0.0
    return dout


def _sigmoid_grad(y: np.ndarray, dout: np.ndarray | None, g: np.ndarray) -> np.ndarray:
    np.subtract(1.0, y, out=g)
    g *= y
    if dout is None:
        return g
    dout *= g
    return dout


#: name -> (forward, gradient, which tensor to cache).  ``linear`` is
#: ``(None, None, None)``: both directions are identity pass-throughs.
ACTIVATIONS: dict[str, tuple[Callable | None, Callable | None, str | None]] = {
    "tanh": (_tanh, _tanh_grad, "y"),
    "relu": (_relu, _relu_grad, "x"),
    "sigmoid": (_sigmoid, _sigmoid_grad, "y"),
    "linear": (None, None, None),
}
