"""Dense layers and activation functions with explicit backward passes."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn import initializers

__all__ = ["ACTIVATIONS", "Activation", "Dense"]


class Dense:
    """A fully connected layer ``y = x @ W + b``.

    The layer caches its input on :meth:`forward` so that :meth:`backward`
    can compute parameter gradients.  Gradients accumulate into ``dW`` and
    ``db`` until :meth:`zero_grad` is called, which lets callers combine
    several loss terms.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        init: str = "orthogonal",
        gain: float = np.sqrt(2.0),
    ) -> None:
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError(f"layer dims must be positive, got {in_dim}x{out_dim}")
        init_fn = {
            "orthogonal": lambda r, i, o: initializers.orthogonal(r, i, o, gain=gain),
            "glorot": initializers.glorot_uniform,
            "he": initializers.he_uniform,
            "zeros": initializers.zeros,
        }[init]
        self.W = init_fn(rng, in_dim, out_dim)
        self.b = np.zeros(out_dim)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None

    @property
    def in_dim(self) -> int:
        return self.W.shape[0]

    @property
    def out_dim(self) -> int:
        return self.W.shape[1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.W + self.b

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients and return the input gradient."""
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.dW += self._x.T @ dout
        self.db += dout.sum(axis=0)
        return dout @ self.W.T

    def zero_grad(self) -> None:
        self.dW[:] = 0.0
        self.db[:] = 0.0

    def parameters(self) -> list[np.ndarray]:
        return [self.W, self.b]

    def gradients(self) -> list[np.ndarray]:
        return [self.dW, self.db]


class Activation:
    """An elementwise activation with a cached-forward backward pass.

    Each activation's gradient depends on exactly one of the forward
    tensors -- tanh and sigmoid on the *output* ``y``, relu and linear on
    the *input* ``x`` -- so only that tensor is retained after
    :meth:`forward` (half the cached activation memory of keeping both,
    which adds up across every policy/value forward of a trace rollout).
    """

    def __init__(self, name: str) -> None:
        if name not in ACTIVATIONS:
            raise ValueError(f"unknown activation {name!r}; choose from {sorted(ACTIVATIONS)}")
        self.name = name
        self._fwd, self._grad, self._keep = ACTIVATIONS[name]
        self._cached: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = self._fwd(x)
        self._cached = x if self._keep == "x" else y
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cached is None:
            raise RuntimeError("backward called before forward")
        return dout * self._grad(self._cached)


def _tanh_grad(y: np.ndarray) -> np.ndarray:
    return 1.0 - y * y


def _relu_grad(x: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(x.dtype)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _sigmoid_grad(y: np.ndarray) -> np.ndarray:
    return y * (1.0 - y)


def _identity(x: np.ndarray) -> np.ndarray:
    return x


def _identity_grad(x: np.ndarray) -> np.ndarray:
    return np.ones_like(x)


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


#: name -> (forward, gradient-from-cached-tensor, which tensor to cache).
ACTIVATIONS: dict[str, tuple[Callable[[np.ndarray], np.ndarray], Callable, str]] = {
    "tanh": (np.tanh, _tanh_grad, "y"),
    "relu": (_relu, _relu_grad, "x"),
    "sigmoid": (_sigmoid, _sigmoid_grad, "y"),
    "linear": (_identity, _identity_grad, "x"),
}
