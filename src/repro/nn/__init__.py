"""Minimal neural-network substrate (NumPy only).

This package replaces the TensorFlow / stable-baselines dependency of the
original paper with a small, self-contained implementation sufficient for
the tiny policy networks the paper uses (at most two hidden layers of 32
neurons).  It provides:

- :mod:`repro.nn.initializers` -- weight initialization schemes,
- :mod:`repro.nn.layers` -- dense layers and activation functions with
  hand-written backward passes through preallocated scratch,
- :mod:`repro.nn.network` -- the :class:`MLP` container with its flat
  contiguous parameter/gradient buffers (per-layer views),
- :mod:`repro.nn.optim` -- SGD / RMSProp / Adam optimizers with fused
  in-place steps, plus flat-buffer gradient clipping,
- :mod:`repro.nn.distributions` -- categorical and diagonal-Gaussian action
  distributions with analytic log-probability and entropy gradients.
"""

from repro.nn.distributions import Categorical, DiagGaussian
from repro.nn.layers import ACTIVATIONS, Dense
from repro.nn.network import MLP
from repro.nn.optim import SGD, Adam, RMSProp, clip_grad_norm, clip_grad_norm_flat

__all__ = [
    "ACTIVATIONS",
    "Adam",
    "Categorical",
    "Dense",
    "DiagGaussian",
    "MLP",
    "RMSProp",
    "SGD",
    "clip_grad_norm",
    "clip_grad_norm_flat",
]
