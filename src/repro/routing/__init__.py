"""Intradomain routing: a third application domain for the framework.

Section 5 suggests that "adversaries trained in other contexts to cause
route flapping, BGP leaks, or incast might be useful since such problems
generally occur rarely, but represent a significant problem when they do
occur", and the introduction names RL-driven routing (Valadarsky et al.)
among the protocols the framework applies to.  This package provides a
compact routing substrate in that spirit:

- :mod:`repro.routing.topology` -- capacitated topologies (networkx),
- :mod:`repro.routing.demands` -- gravity-model traffic matrices,
- :mod:`repro.routing.routing` -- weighted-shortest-path routing, static
  policies (unit / inverse-capacity weights), and an RL policy that maps
  the observed demand to link weights,
- :mod:`repro.routing.adversary` -- an adversary that redistributes a
  *fixed total volume* of traffic to maximize the target's max link
  utilization relative to a reference portfolio (the Equation-1 regret
  structure: overloads that no routing could serve earn nothing).
"""

from repro.routing.adversary import RoutingAdversaryEnv, train_routing_adversary
from repro.routing.demands import gravity_demands
from repro.routing.routing import (
    InverseCapacityRouting,
    LearnedRouting,
    RoutingPolicy,
    UnitWeightRouting,
    max_link_utilization,
    route_demands,
    train_learned_routing,
)
from repro.routing.topology import abilene_like, random_topology

__all__ = [
    "InverseCapacityRouting",
    "LearnedRouting",
    "RoutingAdversaryEnv",
    "RoutingPolicy",
    "UnitWeightRouting",
    "abilene_like",
    "gravity_demands",
    "max_link_utilization",
    "random_topology",
    "route_demands",
    "train_learned_routing",
    "train_routing_adversary",
]
