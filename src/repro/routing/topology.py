"""Capacitated network topologies (directed graphs with Mbps capacities)."""

from __future__ import annotations

import networkx as nx
import numpy as np

__all__ = ["abilene_like", "random_topology", "validate_topology"]


def _directed_with_capacity(edges: list[tuple[int, int, float]]) -> nx.DiGraph:
    graph = nx.DiGraph()
    for u, v, capacity in edges:
        graph.add_edge(u, v, capacity_mbps=float(capacity))
        graph.add_edge(v, u, capacity_mbps=float(capacity))
    return graph


def abilene_like() -> nx.DiGraph:
    """An 11-node topology shaped like the Abilene research backbone.

    Capacities are uniform 10 Gbps trunks scaled down to 10k Mbps units;
    what matters for the experiments is the path diversity, not the
    absolute scale.
    """
    edges = [
        (0, 1, 10_000), (0, 2, 10_000), (1, 2, 10_000), (1, 3, 10_000),
        (2, 5, 10_000), (3, 4, 10_000), (4, 5, 10_000), (4, 6, 10_000),
        (5, 8, 10_000), (6, 7, 10_000), (7, 8, 10_000), (7, 9, 10_000),
        (8, 10, 10_000), (9, 10, 10_000),
    ]
    return _directed_with_capacity(edges)


def random_topology(
    n_nodes: int = 8, mean_degree: float = 3.0, seed: int = 0,
    capacity_range: tuple[float, float] = (5_000.0, 15_000.0),
) -> nx.DiGraph:
    """A connected random topology with heterogeneous capacities."""
    if n_nodes < 3:
        raise ValueError("need at least 3 nodes")
    rng = np.random.default_rng(seed)
    p = min(mean_degree / (n_nodes - 1), 1.0)
    for attempt in range(100):
        undirected = nx.gnp_random_graph(n_nodes, p, seed=int(rng.integers(2**31)))
        if nx.is_connected(undirected):
            break
    else:
        raise RuntimeError("failed to sample a connected topology")
    edges = [
        (u, v, float(rng.uniform(*capacity_range)))
        for u, v in undirected.edges
    ]
    return _directed_with_capacity(edges)


def validate_topology(graph: nx.DiGraph) -> None:
    """Raise if the graph is unusable for routing experiments."""
    if graph.number_of_nodes() < 2:
        raise ValueError("topology needs at least two nodes")
    if not nx.is_strongly_connected(graph):
        raise ValueError("topology must be strongly connected")
    for u, v, data in graph.edges(data=True):
        if data.get("capacity_mbps", 0.0) <= 0.0:
            raise ValueError(f"edge ({u}, {v}) lacks a positive capacity")
