"""Traffic-matrix generation (gravity model) and normalization."""

from __future__ import annotations

import networkx as nx
import numpy as np

__all__ = ["demand_pairs", "gravity_demands", "normalize_demands"]


def demand_pairs(graph: nx.DiGraph) -> list[tuple[int, int]]:
    """All ordered source/destination pairs, in stable order."""
    nodes = sorted(graph.nodes)
    return [(s, t) for s in nodes for t in nodes if s != t]


def gravity_demands(
    graph: nx.DiGraph,
    rng: np.random.Generator,
    total_mbps: float,
    concentration: float = 1.0,
) -> dict[tuple[int, int], float]:
    """A gravity-model traffic matrix summing to ``total_mbps``.

    Node masses are log-normal; ``concentration`` scales their variance
    (larger = more skewed matrices).
    """
    if total_mbps <= 0:
        raise ValueError("total demand must be positive")
    nodes = sorted(graph.nodes)
    masses = rng.lognormal(mean=0.0, sigma=0.5 * concentration, size=len(nodes))
    index = {node: i for i, node in enumerate(nodes)}
    raw = {
        (s, t): masses[index[s]] * masses[index[t]]
        for s, t in demand_pairs(graph)
    }
    return normalize_demands(raw, total_mbps)


def normalize_demands(
    demands: dict[tuple[int, int], float], total_mbps: float
) -> dict[tuple[int, int], float]:
    """Scale a demand matrix to the given total volume."""
    current = sum(demands.values())
    if current <= 0:
        raise ValueError("demand matrix has no volume")
    scale = total_mbps / current
    return {pair: rate * scale for pair, rate in demands.items()}
