"""Weighted-shortest-path routing and routing policies.

The routing model follows classic traffic engineering: a policy assigns a
positive weight to every directed link; each demand is routed on its
weighted shortest path; the objective is the maximum link utilization
(MLU).  The RL policy (:class:`LearnedRouting`) maps the observed demand
matrix to link weights, in the spirit of "A Machine Learning Approach to
Routing" (Valadarsky et al.), which the paper cites as an RL protocol the
framework applies to.
"""

from __future__ import annotations

from typing import Mapping

import networkx as nx
import numpy as np

from repro.routing.demands import demand_pairs, gravity_demands
from repro.routing.topology import validate_topology
from repro.rl.env import Env
from repro.rl.policy import ActorCritic
from repro.rl.ppo import PPO, PPOConfig
from repro.rl.spaces import Box

__all__ = [
    "InverseCapacityRouting",
    "LearnedRouting",
    "RoutingEnv",
    "RoutingPolicy",
    "UnitWeightRouting",
    "max_link_utilization",
    "route_demands",
    "train_learned_routing",
]

_MIN_WEIGHT = 1e-3


def route_demands(
    graph: nx.DiGraph,
    demands: Mapping[tuple[int, int], float],
    weights: Mapping[tuple[int, int], float],
) -> dict[tuple[int, int], float]:
    """Route every demand on its weighted shortest path; return link loads."""
    for edge, w in weights.items():
        if w <= 0:
            raise ValueError(f"weight for edge {edge} must be positive")
    weighted = graph.copy()
    for (u, v), w in weights.items():
        weighted[u][v]["routing_weight"] = w
    for u, v in weighted.edges:
        weighted[u][v].setdefault("routing_weight", 1.0)
    loads: dict[tuple[int, int], float] = {edge: 0.0 for edge in graph.edges}
    paths = dict(nx.all_pairs_dijkstra_path(weighted, weight="routing_weight"))
    for (src, dst), rate in demands.items():
        if rate <= 0:
            continue
        path = paths[src][dst]
        for u, v in zip(path[:-1], path[1:]):
            loads[(u, v)] += rate
    return loads


def max_link_utilization(
    graph: nx.DiGraph, loads: Mapping[tuple[int, int], float]
) -> float:
    """MLU: the highest load/capacity ratio over all links."""
    return max(
        loads.get((u, v), 0.0) / data["capacity_mbps"]
        for u, v, data in graph.edges(data=True)
    )


class RoutingPolicy:
    """Maps a demand matrix to per-link routing weights."""

    name = "routing"

    def weights(
        self, graph: nx.DiGraph, demands: Mapping[tuple[int, int], float]
    ) -> dict[tuple[int, int], float]:
        raise NotImplementedError

    def mlu(self, graph: nx.DiGraph, demands: Mapping[tuple[int, int], float]) -> float:
        """Convenience: route the demands and return the resulting MLU."""
        loads = route_demands(graph, demands, self.weights(graph, demands))
        return max_link_utilization(graph, loads)


class UnitWeightRouting(RoutingPolicy):
    """Hop-count shortest paths (weight 1 on every link)."""

    name = "unit"

    def weights(self, graph, demands):
        return {edge: 1.0 for edge in graph.edges}


class InverseCapacityRouting(RoutingPolicy):
    """OSPF's recommended default: weight proportional to 1/capacity."""

    name = "inv-cap"

    def weights(self, graph, demands):
        return {
            (u, v): 1.0 / data["capacity_mbps"]
            for u, v, data in graph.edges(data=True)
        }


class LearnedRouting(RoutingPolicy):
    """An RL policy: demand matrix in, softplus link weights out."""

    name = "rl"

    def __init__(self, graph: nx.DiGraph, policy: ActorCritic,
                 total_mbps: float) -> None:
        validate_topology(graph)
        self.graph = graph
        self.policy = policy
        self.total_mbps = total_mbps
        self._pairs = demand_pairs(graph)
        self._edges = sorted(graph.edges)
        self._rng = np.random.default_rng(0)

    def _features(self, demands: Mapping[tuple[int, int], float]) -> np.ndarray:
        return np.array([demands.get(p, 0.0) for p in self._pairs]) / self.total_mbps

    def weights(self, graph, demands):
        action, _logp, _value = self.policy.act(
            self._features(demands), self._rng, deterministic=True
        )
        raw = np.asarray(action, dtype=float)
        soft = np.log1p(np.exp(np.clip(raw, -20.0, 20.0))) + _MIN_WEIGHT
        return dict(zip(self._edges, soft))


class RoutingEnv(Env):
    """Training environment for :class:`LearnedRouting`.

    Each step presents a fresh gravity demand matrix; the action is the
    per-link weight vector; the reward is ``-MLU`` of the induced routing.
    """

    def __init__(
        self,
        graph: nx.DiGraph,
        total_mbps: float,
        episode_len: int = 16,
        concentration: float = 1.0,
        seed: int = 0,
    ) -> None:
        validate_topology(graph)
        self.graph = graph
        self.total_mbps = total_mbps
        self.episode_len = episode_len
        self.concentration = concentration
        self._rng = np.random.default_rng(seed)
        self._pairs = demand_pairs(graph)
        self._edges = sorted(graph.edges)
        n_pairs = len(self._pairs)
        n_edges = len(self._edges)
        self.observation_space = Box([-1e6] * n_pairs, [1e6] * n_pairs)
        self.action_space = Box([-10.0] * n_edges, [10.0] * n_edges)
        self._demands: dict[tuple[int, int], float] = {}
        self._t = 0

    def _observe(self) -> np.ndarray:
        return np.array([self._demands.get(p, 0.0) for p in self._pairs]) / self.total_mbps

    def _new_demands(self) -> None:
        self._demands = gravity_demands(
            self.graph, self._rng, self.total_mbps, self.concentration
        )

    def reset(self, *, seed: int | None = None) -> np.ndarray:
        if seed is not None:
            self._rng = np.random.default_rng(seed)
        self._t = 0
        self._new_demands()
        return self._observe()

    def step(self, action):
        raw = np.asarray(action, dtype=float)
        soft = np.log1p(np.exp(np.clip(raw, -20.0, 20.0))) + _MIN_WEIGHT
        weights = dict(zip(self._edges, soft))
        loads = route_demands(self.graph, self._demands, weights)
        mlu = max_link_utilization(self.graph, loads)
        self._t += 1
        self._new_demands()
        return self._observe(), -mlu, self._t >= self.episode_len, {"mlu": mlu}


def train_learned_routing(
    graph: nx.DiGraph,
    total_mbps: float,
    total_steps: int = 20_000,
    seed: int = 0,
    config: PPOConfig | None = None,
) -> tuple[LearnedRouting, PPO]:
    """Train an RL routing policy with PPO; returns (policy, trainer)."""
    env = RoutingEnv(graph, total_mbps, seed=seed)
    cfg = config or PPOConfig(
        n_steps=256, batch_size=64, n_epochs=4, learning_rate=1e-3,
        ent_coef=0.005, hidden=(64, 32), init_log_std=-0.5,
    )
    trainer = PPO(env, cfg, seed=seed)
    trainer.learn(total_steps)
    # Inference uses the trainer's observation normalizer implicitly via
    # raw features; weights come from the deterministic policy.
    policy = LearnedRouting(graph, trainer.policy, total_mbps)
    if cfg.normalize_obs:
        # Bake normalization into the inference path.
        rms = trainer.obs_rms

        original_features = policy._features

        def normalized_features(demands):
            return rms.normalize(original_features(demands))

        policy._features = normalized_features
    return policy, trainer
