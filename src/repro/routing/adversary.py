"""The routing adversary: redistribute fixed traffic volume to hurt a policy.

Equation-1 structure transposed to traffic engineering:

- **action**: a demand *distribution* over source/destination pairs (the
  total volume is fixed, so "overload every link" is not expressible --
  the analogue of the paper's insistence on non-trivial examples),
- **r_protocol**: ``-MLU`` of the target policy on that matrix,
- **r_opt**: ``-MLU`` of the best policy in a reference portfolio (unit
  weights, inverse-capacity weights, and a handful of seeded random
  weight settings) -- a feasibility witness that the demand *could* be
  routed better,
- **p_smoothing**: mean absolute change of the demand distribution, so
  the adversary favours stable, explainable matrices (and route-flap
  style attacks must pay for their churn).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.adversary.reward import AdversaryReward
from repro.rl.env import Env
from repro.rl.ppo import PPO, PPOConfig
from repro.rl.spaces import Box
from repro.routing.demands import demand_pairs, normalize_demands
from repro.routing.routing import (
    InverseCapacityRouting,
    RoutingPolicy,
    UnitWeightRouting,
    max_link_utilization,
    route_demands,
)
from repro.routing.topology import validate_topology

__all__ = ["RoutingAdversaryEnv", "RoutingAdversaryResult", "train_routing_adversary"]


class RoutingAdversaryEnv(Env):
    """The adversary shapes the traffic matrix; the routing policy reacts."""

    def __init__(
        self,
        target: RoutingPolicy,
        graph: nx.DiGraph,
        total_mbps: float,
        episode_len: int = 16,
        smoothing_weight: float = 0.5,
        n_reference_random: int = 4,
        seed: int = 0,
    ) -> None:
        validate_topology(graph)
        if total_mbps <= 0:
            raise ValueError("total demand must be positive")
        self.target = target
        self.graph = graph
        self.total_mbps = total_mbps
        self.episode_len = episode_len
        self.reward_fn = AdversaryReward(smoothing_weight=smoothing_weight)
        self._pairs = demand_pairs(graph)
        self._edges = sorted(graph.edges)
        n_pairs = len(self._pairs)
        self.action_space = Box([-5.0] * n_pairs, [5.0] * n_pairs)
        # Observation: previous target MLU, previous reference MLU, and
        # the previous demand distribution.
        self.observation_space = Box([-1e6] * (2 + n_pairs), [1e6] * (2 + n_pairs))
        rng = np.random.default_rng(seed)
        self._reference_weights = [
            UnitWeightRouting().weights(graph, {}),
            InverseCapacityRouting().weights(graph, {}),
        ] + [
            {edge: float(rng.uniform(0.5, 2.0)) for edge in graph.edges}
            for _ in range(n_reference_random)
        ]
        self._t = 0
        self._prev_distribution = np.full(n_pairs, 1.0 / n_pairs)
        self._prev_mlus = (0.0, 0.0)

    # -- mechanics ---------------------------------------------------------------

    def action_to_demands(self, action) -> dict[tuple[int, int], float]:
        """Softmax the action into a demand distribution of fixed volume."""
        logits = np.clip(np.asarray(action, dtype=float).ravel(), -10.0, 10.0)
        if logits.shape != (len(self._pairs),):
            raise ValueError(
                f"expected action of dim {len(self._pairs)}, got {logits.shape}"
            )
        z = np.exp(logits - logits.max())
        distribution = z / z.sum()
        raw = dict(zip(self._pairs, distribution))
        return normalize_demands(raw, self.total_mbps)

    def reference_mlu(self, demands) -> float:
        """Best (lowest) MLU over the reference weight portfolio."""
        return min(
            max_link_utilization(self.graph, route_demands(self.graph, demands, w))
            for w in self._reference_weights
        )

    def _observe(self) -> np.ndarray:
        return np.concatenate([self._prev_mlus, self._prev_distribution])

    # -- env API --------------------------------------------------------------------

    def reset(self, *, seed: int | None = None) -> np.ndarray:
        self._t = 0
        n = len(self._pairs)
        self._prev_distribution = np.full(n, 1.0 / n)
        self._prev_mlus = (0.0, 0.0)
        return self._observe()

    def step(self, action):
        demands = self.action_to_demands(action)
        distribution = np.array([demands[p] for p in self._pairs]) / self.total_mbps
        smoothing = float(np.abs(distribution - self._prev_distribution).sum())

        target_mlu = self.target.mlu(self.graph, demands)
        ref_mlu = self.reference_mlu(demands)
        # r_opt = -ref_mlu, r_protocol = -target_mlu.
        reward = self.reward_fn(-ref_mlu, -target_mlu, smoothing)

        self._prev_distribution = distribution
        self._prev_mlus = (target_mlu, ref_mlu)
        self._t += 1
        info = {
            "target_mlu": target_mlu,
            "reference_mlu": ref_mlu,
            "regret": target_mlu - ref_mlu,
            "smoothing": smoothing,
        }
        return self._observe(), reward, self._t >= self.episode_len, info


@dataclass
class RoutingAdversaryResult:
    """A trained routing adversary with its environment and history."""

    trainer: PPO
    env: RoutingAdversaryEnv
    history: list[dict]


def train_routing_adversary(
    target: RoutingPolicy,
    graph: nx.DiGraph,
    total_mbps: float,
    total_steps: int = 15_000,
    seed: int = 0,
    config: PPOConfig | None = None,
) -> RoutingAdversaryResult:
    """Train an adversary against a frozen routing policy."""
    env = RoutingAdversaryEnv(target, graph, total_mbps, seed=seed)
    cfg = config or PPOConfig(
        n_steps=256, batch_size=64, n_epochs=4, learning_rate=1e-3,
        ent_coef=0.005, hidden=(32, 16), init_log_std=-0.5,
    )
    trainer = PPO(env, cfg, seed=seed)
    history = trainer.learn(total_steps)
    return RoutingAdversaryResult(trainer=trainer, env=env, history=history)
