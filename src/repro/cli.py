"""Command-line interface: train adversaries, generate traces, evaluate.

Usage examples::

    python -m repro.cli train-abr-adversary --target mpc --steps 50000 \
        --out adv_mpc.npz --traces-out anti_mpc.jsonl --n-traces 50
    python -m repro.cli evaluate-abr --traces anti_mpc.jsonl --chunk-indexed
    python -m repro.cli train-cc-adversary --steps 150000 \
        --traces-out anti_bbr.jsonl --n-traces 5
    python -m repro.cli evaluate-cc --traces anti_bbr.jsonl --sender bbr
    python -m repro.cli eval-cc-matrix --workers 4 --cache-dir .cache/matrix \
        --out results/cc_matrix.txt
    python -m repro.cli attack-abr --attack pgd --eps 0.05 --pgd-steps 10 \
        --verify --summary-out attack.json
    python -m repro.cli make-dataset --kind 3g --count 50 --out corpus.jsonl
    python -m repro.cli serve --port 8008 --batch-size 64
    python -m repro.cli loadgen --port 8008 --protocol pensieve \
        --players 1000 --codec binary --verify

Every command accepts ``--log-dir`` (default ``$REPRO_LOG_DIR``): when
set, the run writes a ``manifest.json`` (command, config, seed entropy,
version, git SHA) plus a ``metrics.jsonl`` event log -- per-update PPO
diagnostics for the training commands, evaluation/cache telemetry for
the rest.  ``--quiet`` suppresses progress chatter while keeping result
tables.  Neither flag changes any computed result.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from contextlib import contextmanager

import numpy as np

from repro.abr.batched import resolve_batch_size
from repro.abr.protocols import MPC, BufferBased, RateBased
from repro.abr.video import Video
from repro.adversary.abr_env import train_abr_adversary
from repro.adversary.cc_env import train_cc_adversary
from repro.adversary.generation import generate_abr_traces, generate_cc_traces
from repro.analysis import format_table
from repro.cc import BBRSender, CubicSender, RenoSender
from repro.cc.matrix import PROTOCOLS as MATRIX_PROTOCOLS
from repro.cc.matrix import format_matrix
from repro.cc.metrics import run_sender_on_traces
from repro.exec import ResultCache, resolve_workers
from repro.experiments.abr_suite import evaluate_protocols
from repro.experiments.cc_suite import run_cc_scenario_matrix
from repro.obs import (
    Console,
    LOG_DIR_ENV,
    MetricsRecorder,
    NULL_RECORDER,
    RunManifest,
)
from repro.traces.io import load_corpus, save_corpus
from repro.traces.synthetic import make_dataset

_ABR_TARGETS = {
    "bb": BufferBased,
    "mpc": lambda: MPC(robust=False),
    "robust-mpc": MPC,
    "rb": RateBased,
}
_SENDERS = {"bbr": BBRSender, "cubic": CubicSender, "reno": RenoSender}


def _add_exec_args(p: argparse.ArgumentParser, cache: bool = True) -> None:
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: $REPRO_WORKERS or serial)")
    p.add_argument("--batch-size", type=int, default=None,
                   help="sessions per lockstep batch "
                        "(default: $REPRO_BATCH_SIZE or serial)")
    if cache:
        p.add_argument("--cache-dir", default=None,
                       help="result cache directory (default: $REPRO_CACHE_DIR)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the result cache for this run")


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--log-dir", default=None,
                   help="write manifest.json + metrics.jsonl to this directory "
                        "(default: $REPRO_LOG_DIR; unset = no logging)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress progress lines (result tables still print)")


@contextmanager
def _run_context(args: argparse.Namespace):
    """Yield ``(recorder, console)`` for one CLI run.

    Writes the run manifest up front when a log directory is configured
    and closes the event log on the way out, success or failure.
    """
    log_dir = args.log_dir or os.environ.get(LOG_DIR_ENV)
    recorder = MetricsRecorder(log_dir) if log_dir else NULL_RECORDER
    console = Console(quiet=args.quiet, recorder=recorder)
    if log_dir:
        # log_dir/quiet steer observability, not the computation, so they
        # stay out of the manifest (and hence the run fingerprint).
        config = {k: v for k, v in vars(args).items()
                  if k not in ("func", "command", "log_dir", "quiet")}
        manifest = RunManifest.create(
            args.command, config, seed=getattr(args, "seed", None)
        )
        console.info(f"run manifest: {manifest.write(log_dir)}")
    try:
        yield recorder, console
    finally:
        recorder.close()


def _resolve_cache(args: argparse.Namespace) -> "ResultCache | bool | None":
    if args.no_cache:
        return False
    if args.cache_dir:
        return ResultCache(args.cache_dir)
    return ResultCache.from_env()


def _report_exec(cache, workers, recorder, console: Console,
                 batch_size: int | None = None) -> None:
    """Post-run telemetry: what ran where, what was served from cache."""
    n = resolve_workers(workers)
    console.info(f"workers: {n if n > 1 else 'serial'}")
    if batch_size is not None:
        b = resolve_batch_size(batch_size)
        console.info(f"batch size: {b if b >= 1 else 'serial'}")
    if isinstance(cache, ResultCache):
        cache.record_metrics(recorder)
        console.info(cache.summary())
    else:
        console.info("cache: disabled")


def _cmd_train_abr_adversary(args: argparse.Namespace) -> int:
    with _run_context(args) as (recorder, console):
        video = Video.synthetic(n_chunks=args.chunks, seed=args.video_seed)
        target = _ABR_TARGETS[args.target]()
        console.info(
            f"training adversary vs {args.target} for {args.steps} steps ..."
        )
        with recorder.timer("cli/train_seconds"):
            result = train_abr_adversary(
                target, video, total_steps=args.steps, seed=args.seed,
                smoothing_weight=args.smoothing_weight, goal=args.goal,
                n_envs=args.n_envs, vec_backend=args.vec_backend,
                recorder=recorder,
            )
        rewards = [h["mean_episode_reward"] for h in result.history]
        console.info(
            f"adversary episode reward: {rewards[0]:.1f} -> {rewards[-1]:.1f}"
        )
        if args.out:
            result.trainer.save(args.out)
            console.info(f"saved adversary model to {args.out}")
        if args.traces_out:
            with recorder.timer("cli/generate_traces_seconds"):
                rolls = generate_abr_traces(
                    result.trainer, result.env, args.n_traces,
                    seed=args.trace_seed,
                    workers=args.workers if args.trace_seed is not None else 0,
                    batch_size=(
                        args.batch_size if args.trace_seed is not None else 0
                    ),
                )
            save_corpus([r.trace for r in rolls], args.traces_out)
            qoe = float(np.mean([r.target_qoe_mean for r in rolls]))
            recorder.record("cli/target_qoe_mean", qoe)
            console.info(f"wrote {args.n_traces} traces to {args.traces_out} "
                         f"(target mean QoE {qoe:.3f})")
    return 0


def _cmd_train_cc_adversary(args: argparse.Namespace) -> int:
    with _run_context(args) as (recorder, console):
        sender_cls = _SENDERS[args.sender]
        console.info(
            f"training adversary vs {args.sender} for {args.steps} steps ..."
        )
        with recorder.timer("cli/train_seconds"):
            result = train_cc_adversary(
                sender_cls, total_steps=args.steps, seed=args.seed,
                episode_intervals=args.episode_intervals, recorder=recorder,
            )
        rewards = [h["mean_episode_reward"] for h in result.history]
        console.info(
            f"adversary episode reward: {rewards[0]:.1f} -> {rewards[-1]:.1f}"
        )
        if args.out:
            result.trainer.save(args.out)
            console.info(f"saved adversary model to {args.out}")
        if args.traces_out:
            with recorder.timer("cli/generate_traces_seconds"):
                rolls = generate_cc_traces(
                    result.trainer, result.env, args.n_traces,
                    seed=args.trace_seed,
                    workers=args.workers if args.trace_seed is not None else 0,
                )
            save_corpus([r.trace for r in rolls], args.traces_out)
            frac = float(np.mean([r.capacity_fraction for r in rolls]))
            recorder.record("cli/capacity_fraction", frac)
            console.info(f"wrote {args.n_traces} traces to {args.traces_out} "
                         f"(target at {frac:.0%} of capacity)")
    return 0


def _cmd_evaluate_abr(args: argparse.Namespace) -> int:
    with _run_context(args) as (recorder, console):
        video = Video.synthetic(n_chunks=args.chunks, seed=args.video_seed)
        traces = load_corpus(args.traces)
        cache = _resolve_cache(args)
        protocols = {name: factory() for name, factory in _ABR_TARGETS.items()}
        qoe = evaluate_protocols(
            video, traces, protocols, chunk_indexed=args.chunk_indexed,
            workers=args.workers, cache=cache if cache is not None else False,
            recorder=recorder, batch_size=args.batch_size,
        )
        rows = [
            [name, float(np.mean(qoes)), float(np.min(qoes))]
            for name, qoes in qoe.items()
        ]
        console.out(format_table(["protocol", "mean QoE", "min QoE"], rows))
        _report_exec(cache, args.workers, recorder, console,
                     batch_size=args.batch_size)
    return 0


def _cmd_evaluate_cc(args: argparse.Namespace) -> int:
    with _run_context(args) as (recorder, console):
        traces = load_corpus(args.traces)
        sender_cls = _SENDERS[args.sender]
        cache = _resolve_cache(args)
        runs = run_sender_on_traces(
            sender_cls, traces,
            seeds=[args.seed + i for i in range(len(traces))],
            workers=args.workers, cache=cache if cache is not None else False,
            recorder=recorder,
        )
        rows = [
            [trace.name, run.mean_throughput_mbps, run.capacity_fraction]
            for trace, run in zip(traces, runs)
        ]
        console.out(
            format_table(["trace", "throughput (Mbps)", "capacity fraction"], rows)
        )
        _report_exec(cache, args.workers, recorder, console)
    return 0


def _cmd_eval_cc_matrix(args: argparse.Namespace) -> int:
    with _run_context(args) as (recorder, console):
        cache = _resolve_cache(args)
        with recorder.timer("cli/eval_cc_matrix_seconds"):
            result = run_cc_scenario_matrix(
                protocols=args.protocols or None,
                n_intervals=args.intervals,
                seed=args.seed,
                schedule_seed=args.schedule_seed,
                workers=args.workers,
                cache=cache if cache is not None else False,
                recorder=recorder,
            )
        text = format_matrix(result)
        console.out(text)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text)
            console.info(f"wrote {args.out}")
        _report_exec(cache, args.workers, recorder, console)
    return 0


def _cmd_regression_build(args: argparse.Namespace) -> int:
    from repro.adversary.regression import AdversarialRegressionSuite

    with _run_context(args) as (recorder, console):
        video = Video.synthetic(n_chunks=args.chunks, seed=args.video_seed)
        protocol = _ABR_TARGETS[args.protocol]()
        suite = AdversarialRegressionSuite(video, margin=args.margin)
        console.info(f"hunting worst cases against {args.protocol} "
                     f"({args.steps} adversary steps) ...")
        with recorder.timer("cli/regression_refresh_seconds"):
            added = suite.refresh(protocol, adversary_steps=args.steps,
                                  n_traces=args.n_traces, keep_worst=args.keep,
                                  seed=args.seed)
        suite.save(args.out)
        recorder.record("cli/regression_cases", len(added))
        console.info(f"recorded {len(added)} cases to {args.out}; thresholds: "
                     + ", ".join(f"{c.min_qoe:.2f}" for c in added))
    return 0


def _cmd_regression_check(args: argparse.Namespace) -> int:
    from repro.adversary.regression import AdversarialRegressionSuite

    with _run_context(args) as (recorder, console):
        video = Video.synthetic(n_chunks=args.chunks, seed=args.video_seed)
        suite = AdversarialRegressionSuite(video)
        suite.load(args.suite)
        protocol = _ABR_TARGETS[args.protocol]()
        report = suite.check(protocol)
        recorder.record("cli/regression_ok", int(report.ok))
        console.out(report.summary())
    return 0 if report.ok else 1


def _serve_protocols(args: argparse.Namespace) -> dict:
    """The protocol lineup a serve/loadgen run fronts (or verifies against)."""
    from repro.serve import default_protocols

    protocols = default_protocols(
        pensieve_hidden=tuple(args.pensieve_hidden),
        pensieve_seed=args.pensieve_seed,
    )
    if args.protocols:
        names = [n.strip() for n in args.protocols.split(",") if n.strip()]
        unknown = sorted(set(names) - set(protocols))
        if unknown:
            raise SystemExit(f"unknown protocol(s): {', '.join(unknown)} "
                             f"(choose from {', '.join(sorted(protocols))})")
        protocols = {n: protocols[n] for n in names}
    return protocols


def _serve_batch_size(args: argparse.Namespace) -> int:
    """``--batch-size``/``$REPRO_BATCH_SIZE`` for serving: 0/unset -> 64."""
    resolved = resolve_batch_size(args.batch_size)
    return resolved if resolved >= 1 else 64


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import DecisionService, HttpServer

    with _run_context(args) as (recorder, console):
        video = Video.synthetic(n_chunks=args.chunks, seed=args.video_seed)
        protocols = _serve_protocols(args)
        cache = _resolve_cache(args)
        service = DecisionService(
            video, protocols, batch_size=_serve_batch_size(args),
            max_wait_us=args.max_wait_us, max_sessions=args.max_sessions,
            seed=args.seed, cache=cache if isinstance(cache, ResultCache) else None,
            recorder=recorder,
        )

        async def run() -> None:
            server = HttpServer(service, host=args.host, port=args.port)
            await server.start()
            console.info(
                f"serving {', '.join(sorted(protocols))} on "
                f"http://{args.host}:{server.port} "
                f"(mode {service.mode}, batch {service.batch_size})"
            )
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(sig, stop.set)
            try:
                await stop.wait()
            finally:
                for sig in (signal.SIGINT, signal.SIGTERM):
                    loop.remove_signal_handler(sig)
                console.info("shutting down (draining in-flight requests) ...")
                await server.close()
                service.record_metrics()
                stats = service.stats()
                console.info(
                    f"served {stats['requests']['decisions']} decisions over "
                    f"{stats['requests']['total']} requests "
                    f"({stats['sessions']['created']} sessions)"
                )

        asyncio.run(run())
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve import (
        CONTENT_BINARY,
        CONTENT_JSON,
        DecisionService,
        HttpTransport,
        InprocTransport,
        run_loadgen,
    )
    from repro.traces.random_traces import random_abr_traces

    with _run_context(args) as (recorder, console):
        video = Video.synthetic(n_chunks=args.chunks, seed=args.video_seed)
        if args.traces:
            traces = load_corpus(args.traces)
        else:
            traces = random_abr_traces(args.n_traces, seed=args.trace_seed,
                                       n_segments=args.chunks)
        content = CONTENT_BINARY if args.codec == "binary" else CONTENT_JSON
        reference = _serve_protocols(args)[args.protocol] if args.verify else None

        async def run():
            if args.inproc:
                cache = _resolve_cache(args)
                service = DecisionService(
                    video, _serve_protocols(args),
                    batch_size=_serve_batch_size(args),
                    max_wait_us=args.max_wait_us, seed=args.seed,
                    cache=cache if isinstance(cache, ResultCache) else None,
                    recorder=recorder,
                )
                await service.start()
                transport = InprocTransport(service)
                try:
                    return await run_loadgen(
                        transport, video, traces, args.protocol, args.players,
                        content_type=content, reference=reference,
                    )
                finally:
                    await service.close()
            transport = HttpTransport(args.host, args.port,
                                      connections=args.connections)
            try:
                return await run_loadgen(
                    transport, video, traces, args.protocol, args.players,
                    content_type=content, reference=reference,
                )
            finally:
                await transport.close()

        report = asyncio.run(run())
        for line in report.lines():
            console.out(line)
        recorder.record("loadgen/requests_per_second",
                        report.requests_per_second)
        recorder.record("loadgen/errors", report.errors)
        if report.mismatches >= 0:
            recorder.record("loadgen/mismatches", report.mismatches)
        if args.summary_out:
            with open(args.summary_out, "w") as fh:
                json.dump(report.summary_dict(), fh, indent=2)
                fh.write("\n")
            console.info(f"wrote latency summary to {args.summary_out}")
    return 1 if (report.errors or report.mismatches > 0) else 0


def _attack_config(args: argparse.Namespace):
    from repro.attacks import AttackConfig

    return AttackConfig(
        kind=args.attack, norm=args.norm, eps=args.eps, steps=args.pgd_steps,
        step_size=args.step_size, targeted=args.targeted,
        target_action=args.target_action, rand_init=args.rand_init,
        seed=args.attack_seed,
    )


def _cmd_attack_abr(args: argparse.Namespace) -> int:
    from repro.abr.protocols.pensieve import train_pensieve
    from repro.attacks import AttackedPensieve
    from repro.serve.service import make_demo_pensieve
    from repro.traces.random_traces import random_abr_traces

    with _run_context(args) as (recorder, console):
        video = Video.synthetic(n_chunks=args.chunks, seed=args.video_seed)
        if args.traces:
            traces = load_corpus(args.traces)
        else:
            traces = random_abr_traces(args.n_traces, seed=args.trace_seed,
                                       n_segments=args.chunks)

        def make_head(seed: int):
            if args.pensieve_train_steps > 0:
                train = random_abr_traces(16, seed=seed + 1000,
                                          n_segments=args.chunks)
                with recorder.timer("cli/pensieve_train_seconds", seed=seed):
                    return train_pensieve(
                        train, video, total_steps=args.pensieve_train_steps,
                        seed=seed,
                    ).agent
            return make_demo_pensieve(seed=seed)

        victim = make_head(args.pensieve_seed)
        surrogate = None
        if (args.surrogate_seed is not None
                and args.surrogate_seed != args.pensieve_seed):
            surrogate = make_head(args.surrogate_seed)
        attacked = AttackedPensieve(victim, _attack_config(args),
                                    surrogate=surrogate)
        cache = _resolve_cache(args)
        protocols = {
            "bb": BufferBased(),
            "mpc": MPC(robust=False),
            "pensieve": victim,
            attacked.name: attacked,
        }
        qoe = evaluate_protocols(
            video, traces, protocols, chunk_indexed=args.chunk_indexed,
            workers=args.workers, cache=cache if cache is not None else False,
            recorder=recorder, batch_size=args.batch_size,
        )
        clean_mean = float(np.mean(qoe["pensieve"]))
        rows = []
        for name, qoes in qoe.items():
            mean = float(np.mean(qoes))
            damage = clean_mean - mean if name == attacked.name else 0.0
            rows.append([name, mean, float(np.min(qoes)), damage])
        console.out(format_table(
            ["protocol", "mean QoE", "min QoE", "damage vs clean"], rows
        ))
        damage = clean_mean - float(np.mean(qoe[attacked.name]))
        recorder.record("cli/attack_damage", damage)

        mismatches = 0
        if args.verify:
            # Determinism check: replay the attacked evaluation serially
            # and through the batched engine, both uncached (a cache hit
            # would trivially "match"), and demand bitwise-equal QoE.
            reference = qoe[attacked.name]
            replays = {
                "serial": dict(workers=0, batch_size=0),
                "batched": dict(workers=0,
                                batch_size=max(resolve_batch_size(args.batch_size), 7)),
            }
            for label, opts in replays.items():
                replay = evaluate_protocols(
                    video, traces, {attacked.name: attacked},
                    chunk_indexed=args.chunk_indexed, cache=False,
                    recorder=recorder, **opts,
                )[attacked.name]
                bad = sum(a != b for a, b in zip(reference, replay))
                mismatches += bad
                console.info(f"verify {label}: "
                             f"{'OK' if bad == 0 else f'{bad} mismatches'}")
            recorder.record("cli/verify_mismatches", mismatches)

        if args.summary_out:
            summary = {
                "attack": attacked.name,
                "eps": args.eps,
                "clean_qoe_mean": clean_mean,
                "attacked_qoe_mean": float(np.mean(qoe[attacked.name])),
                "damage": damage,
                "qoe": {name: float(np.mean(q)) for name, q in qoe.items()},
                "verify_mismatches": mismatches if args.verify else None,
            }
            with open(args.summary_out, "w") as fh:
                json.dump(summary, fh, indent=2)
                fh.write("\n")
            console.info(f"wrote attack summary to {args.summary_out}")
        _report_exec(cache, args.workers, recorder, console,
                     batch_size=args.batch_size)
    return 1 if mismatches else 0


def _cmd_make_dataset(args: argparse.Namespace) -> int:
    with _run_context(args) as (recorder, console):
        traces = make_dataset(args.kind, args.count, seed=args.seed,
                              duration=args.duration)
        save_corpus(traces, args.out)
        mean_bw = float(np.mean([t.mean_bandwidth() for t in traces]))
        recorder.record("cli/mean_bandwidth_mbps", mean_bw)
        console.info(f"wrote {len(traces)} {args.kind} traces to {args.out} "
                     f"(mean bandwidth {mean_bw:.2f} Mbps)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("train-abr-adversary", help="train an adversary vs an ABR protocol")
    p.add_argument("--target", choices=sorted(_ABR_TARGETS), default="bb")
    p.add_argument("--steps", type=int, default=40_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--chunks", type=int, default=48)
    p.add_argument("--video-seed", type=int, default=1)
    p.add_argument("--smoothing-weight", type=float, default=1.0)
    p.add_argument("--goal", choices=("qoe_regret", "rebuffer"), default="qoe_regret")
    p.add_argument("--n-envs", type=int, default=1,
                   help="parallel rollout envs (1 = historical serial path)")
    p.add_argument("--vec-backend", choices=("sync", "subproc", "batched"),
                   default="sync",
                   help="rollout backend for --n-envs > 1; 'batched' serves "
                        "the target with one vectorized call per step "
                        "(same rollouts bit for bit, fastest for pensieve)")
    p.add_argument("--out", help="save the trained model (.npz)")
    p.add_argument("--traces-out", help="write generated traces (JSONL)")
    p.add_argument("--n-traces", type=int, default=20)
    p.add_argument("--trace-seed", type=int, default=None,
                   help="seed for per-trace rollout noise (enables --workers)")
    _add_exec_args(p, cache=False)
    _add_obs_args(p)
    p.set_defaults(func=_cmd_train_abr_adversary)

    p = sub.add_parser("train-cc-adversary", help="train an adversary vs a CC sender")
    p.add_argument("--sender", choices=sorted(_SENDERS), default="bbr")
    p.add_argument("--steps", type=int, default=100_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--episode-intervals", type=int, default=1000)
    p.add_argument("--out", help="save the trained model (.npz)")
    p.add_argument("--traces-out", help="write generated traces (JSONL)")
    p.add_argument("--n-traces", type=int, default=5)
    p.add_argument("--trace-seed", type=int, default=None,
                   help="seed for per-trace rollout noise (enables --workers)")
    _add_exec_args(p, cache=False)
    _add_obs_args(p)
    p.set_defaults(func=_cmd_train_cc_adversary)

    p = sub.add_parser("evaluate-abr", help="run every ABR protocol over a corpus")
    p.add_argument("--traces", required=True)
    p.add_argument("--chunks", type=int, default=48)
    p.add_argument("--video-seed", type=int, default=1)
    p.add_argument("--chunk-indexed", action="store_true",
                   help="apply one bandwidth per chunk (adversarial replay)")
    _add_exec_args(p)
    _add_obs_args(p)
    p.set_defaults(func=_cmd_evaluate_abr)

    p = sub.add_parser("evaluate-cc", help="replay CC traces against a sender")
    p.add_argument("--traces", required=True)
    p.add_argument("--sender", choices=sorted(_SENDERS), default="bbr")
    p.add_argument("--seed", type=int, default=0)
    _add_exec_args(p)
    _add_obs_args(p)
    p.set_defaults(func=_cmd_evaluate_cc)

    p = sub.add_parser(
        "eval-cc-matrix",
        help="run the 5x4 contention scenario matrix on the multi-flow "
             "emulator",
    )
    p.add_argument("--protocols", nargs="*", choices=sorted(MATRIX_PROTOCOLS),
                   default=None,
                   help="subset of protocols (default: all five)")
    p.add_argument("--intervals", type=int, default=600,
                   help="30 ms adversary intervals per cell (default 600 = 18 s)")
    p.add_argument("--seed", type=int, default=0,
                   help="emulator loss-process seed")
    p.add_argument("--schedule-seed", type=int, default=42,
                   help="seed of the replayed adversarial link schedule")
    p.add_argument("--out", default=None,
                   help="also write the table to this file "
                        "(e.g. results/cc_matrix.txt)")
    _add_exec_args(p)
    _add_obs_args(p)
    p.set_defaults(func=_cmd_eval_cc_matrix)

    p = sub.add_parser("regression-build",
                       help="record adversarial worst cases as a CI suite")
    p.add_argument("--protocol", choices=sorted(_ABR_TARGETS), default="bb")
    p.add_argument("--steps", type=int, default=20_000)
    p.add_argument("--n-traces", type=int, default=10)
    p.add_argument("--keep", type=int, default=5)
    p.add_argument("--margin", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--chunks", type=int, default=48)
    p.add_argument("--video-seed", type=int, default=1)
    p.add_argument("--out", required=True)
    _add_obs_args(p)
    p.set_defaults(func=_cmd_regression_build)

    p = sub.add_parser("regression-check",
                       help="replay a recorded suite against a protocol")
    p.add_argument("--suite", required=True)
    p.add_argument("--protocol", choices=sorted(_ABR_TARGETS), required=True)
    p.add_argument("--chunks", type=int, default=48)
    p.add_argument("--video-seed", type=int, default=1)
    _add_obs_args(p)
    p.set_defaults(func=_cmd_regression_check)

    def _add_serve_video_args(p: argparse.ArgumentParser) -> None:
        # Video + Pensieve construction: an HTTP loadgen can only verify
        # served decisions when these match the server's flags exactly.
        p.add_argument("--chunks", type=int, default=48)
        p.add_argument("--video-seed", type=int, default=1)
        p.add_argument("--protocols", default=None,
                       help="comma-separated subset to serve "
                            "(default: bb,bola,mpc,robust-mpc,rb,pensieve)")
        p.add_argument("--pensieve-hidden", type=int, nargs="+",
                       default=[64, 32],
                       help="hidden layer widths of the demo Pensieve head")
        p.add_argument("--pensieve-seed", type=int, default=11)
        p.add_argument("--seed", type=int, default=0,
                       help="service seed (per-session rng spawning)")
        p.add_argument("--max-wait-us", type=float, default=0.0,
                       help="coalescing window: max microseconds to wait for "
                            "a full batch (0 = one event-loop tick)")

    p = sub.add_parser("serve",
                       help="run the ABR decision service over HTTP")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8008,
                   help="listen port (0 = ephemeral)")
    p.add_argument("--max-sessions", type=int, default=65_536)
    _add_serve_video_args(p)
    _add_exec_args(p)
    _add_obs_args(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("loadgen",
                       help="closed-loop load generator for the decision service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8008)
    p.add_argument("--inproc", action="store_true",
                   help="spin up the service in-process instead of over HTTP")
    p.add_argument("--protocol", default="bola",
                   help="protocol the simulated players request")
    p.add_argument("--players", type=int, default=100)
    p.add_argument("--codec", choices=("json", "binary"), default="json")
    p.add_argument("--connections", type=int, default=32,
                   help="HTTP keep-alive connection pool size")
    p.add_argument("--traces", default=None,
                   help="trace corpus (JSONL); default: random ABR traces")
    p.add_argument("--n-traces", type=int, default=16)
    p.add_argument("--trace-seed", type=int, default=0)
    p.add_argument("--verify", action="store_true",
                   help="replay every player inline and count decision "
                        "mismatches (HTTP: video/Pensieve flags must match "
                        "the server's)")
    p.add_argument("--summary-out", default=None,
                   help="write the latency/throughput summary JSON here")
    _add_serve_video_args(p)
    _add_exec_args(p)
    _add_obs_args(p)
    p.set_defaults(func=_cmd_loadgen)

    p = sub.add_parser("attack-abr",
                       help="evaluate Pensieve under white-box FGSM/PGD "
                            "observation attacks")
    p.add_argument("--attack", choices=("fgsm", "pgd"), default="fgsm")
    p.add_argument("--norm", choices=("linf", "l2"), default="linf")
    p.add_argument("--eps", type=float, default=0.05,
                   help="attack budget in raw feature units")
    p.add_argument("--pgd-steps", type=int, default=10,
                   help="PGD iterations (ignored for fgsm)")
    p.add_argument("--step-size", type=float, default=None,
                   help="PGD step size (default: 2.5*eps/steps)")
    p.add_argument("--targeted", action="store_true",
                   help="drag decisions toward --target-action instead of "
                        "untargeted cross-entropy ascent")
    p.add_argument("--target-action", type=int, default=0,
                   help="ladder index the targeted attack forces (0 = lowest)")
    p.add_argument("--rand-init", action="store_true",
                   help="random PGD start inside the budget ball")
    p.add_argument("--attack-seed", type=int, default=0,
                   help="seed for the attack's (per-session) random start")
    p.add_argument("--pensieve-seed", type=int, default=0,
                   help="victim head seed")
    p.add_argument("--pensieve-train-steps", type=int, default=6000,
                   help="PPO steps to train each head (0 = frozen demo head)")
    p.add_argument("--surrogate-seed", type=int, default=None,
                   help="craft gradients with a different head's seed "
                        "(transfer attack); default: white-box")
    p.add_argument("--traces", default=None,
                   help="trace corpus (JSONL); default: random ABR traces")
    p.add_argument("--n-traces", type=int, default=12)
    p.add_argument("--trace-seed", type=int, default=0)
    p.add_argument("--chunks", type=int, default=48)
    p.add_argument("--video-seed", type=int, default=1)
    p.add_argument("--chunk-indexed", action="store_true",
                   help="apply one bandwidth per chunk (adversarial replay)")
    p.add_argument("--verify", action="store_true",
                   help="replay the attacked evaluation serially and batched, "
                        "uncached, and fail on any QoE mismatch")
    p.add_argument("--summary-out", default=None,
                   help="write a JSON summary (means, damage, verify) here")
    _add_exec_args(p)
    _add_obs_args(p)
    p.set_defaults(func=_cmd_attack_abr)

    p = sub.add_parser("make-dataset", help="generate a synthetic trace corpus")
    p.add_argument("--kind", choices=("broadband", "3g"), required=True)
    p.add_argument("--count", type=int, default=50)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duration", type=float, default=320.0)
    p.add_argument("--out", required=True)
    _add_obs_args(p)
    p.set_defaults(func=_cmd_make_dataset)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
