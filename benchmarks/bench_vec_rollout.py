"""Benchmark: vectorized rollout collection throughput vs n_envs.

Measures ``collect_rollout`` steps/sec of the ABR adversary PPO at
``n_envs`` in {1, 4, 8, 16}.  ``n_envs == 1`` exercises the legacy
single-env loop (the pre-vectorization baseline); larger counts go
through :class:`~repro.rl.vec_env.SyncVecEnv` with the batched
``r_opt`` solver.  On one core the speedup comes from amortizing the
exhaustive-search plan table and the network forward across envs, so
the curve saturates once those dominate.

Run standalone (no pytest needed):

    PYTHONPATH=src python benchmarks/bench_vec_rollout.py [--quick]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.abr.protocols import BufferBased
from repro.abr.video import Video
from repro.adversary.abr_env import AbrAdversaryEnv
from repro.rl.ppo import PPO, PPOConfig
from repro.rl.vec_env import SyncVecEnv

N_ENVS_GRID = (1, 4, 8, 16)
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def measure_steps_per_sec(
    n_envs: int, steps_per_rollout: int, repeats: int, video: Video
) -> float:
    """Wall-clock env-steps/sec of collect_rollout at a given width."""
    n_steps = max(steps_per_rollout // n_envs, 8)
    cfg = PPOConfig(
        n_steps=n_steps,
        batch_size=n_steps * n_envs,
        n_envs=n_envs,
        init_log_std=-0.3,
    )
    env = AbrAdversaryEnv(BufferBased(), video)
    if n_envs == 1:
        trainer = PPO(env, cfg, seed=0)
    else:
        vec = SyncVecEnv([lambda: AbrAdversaryEnv(BufferBased(), video)] * n_envs)
        trainer = PPO(vec, cfg, seed=0)
    trainer.collect_rollout()  # warm up (obs-rms init, combo-table cache)
    start = time.perf_counter()
    for _ in range(repeats):
        trainer.collect_rollout()
    elapsed = time.perf_counter() - start
    return n_steps * n_envs * repeats / elapsed


def render_table(rows: list[tuple[int, float, float]]) -> str:
    lines = [
        "Vectorized rollout collection (ABR adversary vs BufferBased)",
        "",
        f"{'n_envs':>7} {'steps/sec':>12} {'speedup':>9}",
    ]
    for n_envs, rate, speedup in rows:
        lines.append(f"{n_envs:>7} {rate:>12.0f} {speedup:>8.2f}x")
    return "\n".join(lines) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke-test sizes (CI): fewer steps and repeats",
    )
    args = parser.parse_args()
    steps_per_rollout = 128 if args.quick else 512
    repeats = 1 if args.quick else 3

    video = Video.synthetic(n_chunks=48, seed=1)
    rows: list[tuple[int, float, float]] = []
    baseline = None
    for n_envs in N_ENVS_GRID:
        rate = measure_steps_per_sec(n_envs, steps_per_rollout, repeats, video)
        if baseline is None:
            baseline = rate
        rows.append((n_envs, rate, rate / baseline))
        print(f"n_envs={n_envs:<3d} {rate:>10.0f} steps/sec "
              f"({rate / baseline:.2f}x)")

    table = render_table(rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "bench_vec_rollout.txt"
    out.write_text(table)
    print(f"\nwrote {out}")

    # The acceptance bar for the vectorization work: >= 2x at n_envs=8.
    # Timing jitter on a loaded CI box is real, so --quick only warns.
    speedup8 = dict((n, s) for n, _, s in rows).get(8, 0.0)
    if speedup8 < 2.0:
        print(f"WARNING: n_envs=8 speedup {speedup8:.2f}x below 2x target")
        if not args.quick:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
