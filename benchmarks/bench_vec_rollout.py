"""Benchmark: vectorized rollout collection throughput vs n_envs.

Measures raw adversary-env steps/sec at ``n_envs`` in
{1, 4, 8, 16, 32, 64} for two vec-env backends over two targets:

- *sync*: :class:`~repro.rl.vec_env.SyncVecEnv` stepping ``n_envs``
  independent :class:`~repro.adversary.abr_env.AbrAdversaryEnv` worlds
  with one serial target-policy ``select`` per env per step (but the
  batched ``r_opt`` solver via ``batch_step``).
- *batched*: :class:`~repro.adversary.batched_env.BatchedAbrVecEnv`,
  which advances every world in lockstep with ONE batched target-policy
  evaluation and one vectorized ``r_opt`` solve per step.

Targets: ``bb`` (BufferBased -- per-step cost is dominated by the
``r_opt`` solver, so the backends converge) and ``pensieve`` (a frozen
NN policy -- the headline case, where the batched backend folds
``n_envs`` MLP forwards into one GEMM).

Both backends are driven with the identical action stream and each
timed pair is first verified bitwise: observations, rewards, dones.
Interleaved repeats with a per-cell median keep common-mode host drift
out of the speedup ratios.

Guards: batched >= 3x sync at n_envs=16 on the Pensieve target
(the PR acceptance bar); ``--quick`` (CI) runs a reduced grid with a
>= 2x floor to absorb loaded-box jitter.

Run standalone (no pytest needed):

    PYTHONPATH=src python benchmarks/bench_vec_rollout.py [--quick]
"""

from __future__ import annotations

import argparse
import statistics
import time
from pathlib import Path

import numpy as np

from repro.abr.protocols import BufferBased
from repro.abr.video import Video
from repro.adversary.abr_env import AbrAdversaryEnv
from repro.rl.vec_env import SyncVecEnv
from repro.serve import make_demo_pensieve

N_ENVS_GRID = (1, 4, 8, 16, 32, 64)
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

TARGETS = {
    "bb": lambda: BufferBased(),
    "pensieve": lambda: make_demo_pensieve(),
}


def make_backends(target: str, n_envs: int, video: Video):
    factory = TARGETS[target]
    mk = lambda: AbrAdversaryEnv(factory(), video)  # noqa: E731
    sync = SyncVecEnv([mk for _ in range(n_envs)], seed=0)
    batched = mk().batched_vec_env(n_envs, seed=0)
    return sync, batched


def verify_bitwise(target: str, n_envs: int, video: Video, steps: int = 40) -> None:
    """Assert the two backends agree bit for bit on a short rollout."""
    sync, batched = make_backends(target, n_envs, video)
    obs_s = sync.reset(seed=7)
    obs_b = batched.reset(seed=7)
    assert obs_s.tobytes() == obs_b.tobytes(), f"{target} n={n_envs}: reset obs differ"
    rng = np.random.default_rng(13)
    for t in range(steps):
        acts = rng.uniform(-1.0, 1.0, size=(n_envs, 1))
        os_, rs, ds, _ = sync.step(acts)
        ob_, rb, db, _ = batched.step(acts)
        assert os_.tobytes() == ob_.tobytes(), f"{target} n={n_envs} t={t}: obs differ"
        assert np.asarray(rs, float).tobytes() == np.asarray(rb, float).tobytes(), (
            f"{target} n={n_envs} t={t}: rewards differ"
        )
        assert list(ds) == list(db), f"{target} n={n_envs} t={t}: dones differ"
    sync.close()
    batched.close()


def time_rollout(vec, n_envs: int, steps: int) -> float:
    """Wall-clock env-steps/sec of `steps` lockstep rounds."""
    vec.reset(seed=0)
    acts = np.random.default_rng(0).uniform(-1.0, 1.0, size=(steps, n_envs, 1))
    start = time.perf_counter()
    for t in range(steps):
        vec.step(acts[t])
    return steps * n_envs / (time.perf_counter() - start)


def measure(target: str, n_envs: int, video: Video, steps: int, repeats: int):
    """Interleaved sync/batched medians -> (sync steps/s, batched steps/s)."""
    sync, batched = make_backends(target, n_envs, video)
    # Warm-up: obs-rms-free here, but primes the plan/quality caches and
    # the allocator so the first timed pass is not an outlier.
    time_rollout(sync, n_envs, min(steps, 16))
    time_rollout(batched, n_envs, min(steps, 16))
    s_rates, b_rates = [], []
    for _ in range(repeats):
        s_rates.append(time_rollout(sync, n_envs, steps))
        b_rates.append(time_rollout(batched, n_envs, steps))
    sync.close()
    batched.close()
    return statistics.median(s_rates), statistics.median(b_rates)


def render_table(rows) -> str:
    lines = [
        "Vectorized adversary rollout backends (sync vs batched, steps/sec)",
        "",
        f"{'target':<10} {'n_envs':>7} {'sync':>10} {'batched':>10} {'speedup':>9}",
    ]
    for target, n_envs, s, b in rows:
        lines.append(
            f"{target:<10} {n_envs:>7} {s:>10.0f} {b:>10.0f} {b / s:>8.2f}x"
        )
    return "\n".join(lines) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke-test sizes (CI): pensieve only, widths (1, 16), >=2x floor",
    )
    args = parser.parse_args()
    steps = 64 if args.quick else 256
    repeats = 1 if args.quick else 3
    grid = (1, 16) if args.quick else N_ENVS_GRID
    targets = ("pensieve",) if args.quick else tuple(TARGETS)
    floor = 2.0 if args.quick else 3.0

    video = Video.synthetic(n_chunks=48, seed=1)
    for target in targets:
        verify_bitwise(target, min(4, max(grid)), video)
    print("bitwise identity sync == batched: verified")

    rows = []
    for target in targets:
        for n_envs in grid:
            s, b = measure(target, n_envs, video, steps, repeats)
            rows.append((target, n_envs, s, b))
            print(f"{target:<10} n_envs={n_envs:<3d} sync {s:>8.0f}  "
                  f"batched {b:>8.0f}  ({b / s:.2f}x)")

    table = render_table(rows)
    if not args.quick:
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / "bench_vec_rollout.txt"
        out.write_text(table)
        print(f"\nwrote {out}")

    # Acceptance bar: batched >= 3x sync at n_envs=16 on the Pensieve
    # target (>= 2x in --quick, where CI jitter on a loaded box is real).
    cell = {(t, n): b / s for t, n, s, b in rows}
    speedup16 = cell.get(("pensieve", 16), 0.0)
    if speedup16 < floor:
        print(f"FAIL: pensieve n_envs=16 batched speedup {speedup16:.2f}x "
              f"below {floor:.0f}x floor")
        return 1
    print(f"pensieve n_envs=16 speedup {speedup16:.2f}x (floor {floor:.0f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
