"""Ablation: alternative adversarial goals (section 5).

"An ABR adversary could be created with the specific goal of causing
rebuffering or low bit-rate playback.  Specific goals like these might
yield better insights about protocol behavior than general goals."

Measured outcome (recorded in results/): at equal budgets the *general*
QoE-regret objective discovers rebuffer-heavy attacks on its own --
rebuffering is QoE's dominant lever -- while the rebuffer-only reward is
sparser (zero until an attack lands) and trains more slowly.  Both
objectives still stall the target far more than random traces do, which
is what we assert.
"""

import numpy as np
from conftest import scaled, tuned_abr_adversary_config, write_results

from repro.abr.protocols import BufferBased, run_session
from repro.adversary.abr_env import train_abr_adversary
from repro.adversary.generation import generate_abr_traces
from repro.analysis import format_table
from repro.traces.random_traces import random_abr_traces


def measure(video, traces):
    rebufs, qoes = [], []
    for trace in traces:
        replay = run_session(video, trace, BufferBased(), chunk_indexed=True)
        rebufs.append(replay.total_rebuffer)
        qoes.append(replay.qoe_mean)
    return float(np.mean(rebufs)), float(np.mean(qoes))


def run_goals(video, budget):
    out = {}
    for goal in ("qoe_regret", "rebuffer"):
        result = train_abr_adversary(
            BufferBased(), video, total_steps=budget, seed=5,
            config=tuned_abr_adversary_config(), goal=goal,
        )
        rolls = generate_abr_traces(result.trainer, result.env, 15)
        rebuf, qoe = measure(video, [r.trace for r in rolls])
        out[goal] = {"rebuffer_s": rebuf, "qoe": qoe}
    rand_rebuf, rand_qoe = measure(
        video, random_abr_traces(15, seed=6, n_segments=video.n_chunks)
    )
    out["random baseline"] = {"rebuffer_s": rand_rebuf, "qoe": rand_qoe}
    return out


def test_ablation_adversarial_goals(benchmark, video48):
    budget = scaled(40_000)
    results = benchmark.pedantic(run_goals, args=(video48, budget),
                                 rounds=1, iterations=1)
    table = format_table(
        ["goal", "BB total rebuffer (s/video)", "BB mean QoE"],
        [[g, r["rebuffer_s"], r["qoe"]] for g, r in results.items()],
    )
    text = "Ablation -- adversarial goal (vs BB)\n\n" + table + "\n"
    text += (
        "\nnote: the general regret objective already drives stalls (QoE's\n"
        "dominant penalty); the rebuffer-only reward is sparse and learns\n"
        "more slowly at equal budget.\n"
    )
    write_results("ablation_goals", text)
    print("\n" + text)

    # Both learned objectives must out-stall random condition churn.
    rand = results["random baseline"]["rebuffer_s"]
    assert results["qoe_regret"]["rebuffer_s"] > rand
    assert results["rebuffer"]["rebuffer_s"] > rand
    benchmark.extra_info["rebuffer_by_goal"] = {
        g: r["rebuffer_s"] for g, r in results.items()
    }
