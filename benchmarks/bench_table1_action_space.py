"""Table 1: range of link parameters produced by the CC adversary.

Verifies that the implemented action space matches the paper's table and
that sampled/scaled actions always land inside it, then reports the table.
"""

import numpy as np
from conftest import write_results

from repro.adversary.cc_env import CC_ACTION_RANGES, CcAdversaryEnv
from repro.analysis import format_table
from repro.cc.protocols.bbr import BBRSender

PAPER_TABLE1 = {
    "bandwidth_mbps": (6.0, 24.0),
    "latency_ms": (15.0, 60.0),
    "loss_rate": (0.0, 0.10),
}


def run_table1():
    env = CcAdversaryEnv(BBRSender, episode_intervals=10)
    rng = np.random.default_rng(0)
    observed = {k: [np.inf, -np.inf] for k in CC_ACTION_RANGES}
    for _ in range(2000):
        raw = rng.normal(0.0, 2.0, size=3)  # wilder than PPO exploration
        bw, lat, loss = env.action_to_conditions(raw)
        for key, value in zip(CC_ACTION_RANGES, (bw, lat, loss)):
            observed[key][0] = min(observed[key][0], value)
            observed[key][1] = max(observed[key][1], value)
    return observed


def test_table1_action_space(benchmark):
    observed = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    rows = []
    for key, (lo, hi) in PAPER_TABLE1.items():
        assert CC_ACTION_RANGES[key] == (lo, hi), f"{key} range drifted from Table 1"
        assert observed[key][0] >= lo - 1e-9
        assert observed[key][1] <= hi + 1e-9
        rows.append([key, lo, hi, observed[key][0], observed[key][1]])
    table = format_table(
        ["parameter", "paper lo", "paper hi", "observed lo", "observed hi"], rows
    )
    text = "Table 1 -- CC adversary action ranges (30 ms granularity)\n\n" + table + "\n"
    write_results("table1_action_space", text)
    print("\n" + text)
