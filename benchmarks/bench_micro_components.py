"""Component micro-benchmarks: per-operation latency of the substrates.

These are conventional pytest-benchmark timings (many rounds) rather than
experiment reproductions; they track the cost of the hot paths that the
adversary training loop exercises millions of times.
"""

import numpy as np

from repro.abr.protocols import MPC, BufferBased
from repro.abr.simulator import ControlledBandwidth, StreamingSession
from repro.cc.link import TimeVaryingLink
from repro.cc.network import PacketNetworkEmulator
from repro.cc.protocols.bbr import BBRSender
from repro.nn.network import MLP
from repro.rl.env import Env
from repro.rl.ppo import PPO, PPOConfig
from repro.rl.spaces import Box, Discrete


class _ToyEnv(Env):
    """Minimal env for timing the PPO update path."""

    observation_space = Box([0.0], [1.0])
    action_space = Discrete(2)

    def __init__(self):
        self._t = 0

    def reset(self, *, seed=None):
        self._t = 0
        return np.array([0.5])

    def step(self, action):
        self._t += 1
        return np.array([0.5]), float(action), self._t >= 16, {}


def test_bench_mlp_forward(benchmark):
    rng = np.random.default_rng(0)
    net = MLP((110, 32, 16, 1), rng)
    x = rng.standard_normal((64, 110))
    benchmark(net.forward, x)


def test_bench_mpc_decision(benchmark, video48):
    """One robust-MPC plan search (6^5 = 7776 plans, vectorized)."""
    mpc = MPC()
    mpc.reset(video48)
    session = StreamingSession(video48, ControlledBandwidth(2.0))
    for _ in range(6):
        session.download_chunk(mpc.select(session.observation()))
    obs = session.observation()
    benchmark(mpc.select, obs)


def test_bench_bb_decision(benchmark, video48):
    bb = BufferBased()
    bb.reset(video48)
    session = StreamingSession(video48, ControlledBandwidth(2.0))
    session.download_chunk(0)
    obs = session.observation()
    benchmark(bb.select, obs)


def test_bench_full_video_playback(benchmark, video48):
    """48 chunks of simulator mechanics under BB."""

    def play():
        session = StreamingSession(video48, ControlledBandwidth(2.0))
        bb = BufferBased()
        bb.reset(video48)
        while not session.done:
            session.download_chunk(bb.select(session.observation()))
        return session.summary().qoe_mean

    benchmark(play)


def test_bench_emulator_second_of_bbr(benchmark):
    """One simulated second of BBR at 12 Mbps (~1000 packets)."""

    def run():
        link = TimeVaryingLink(12.0, 40.0, 0.0)
        emulator = PacketNetworkEmulator(BBRSender(), link, seed=0)
        emulator.run_until(1.0)
        return link.bytes_delivered

    benchmark(run)


def test_bench_ppo_update(benchmark):
    """One PPO rollout-and-update cycle on a trivial env."""
    ppo = PPO(_ToyEnv(), PPOConfig(n_steps=256, n_epochs=4), seed=0)

    def iteration():
        last_value = ppo.collect_rollout()
        ppo.buffer.compute_gae(last_value, ppo.cfg.gamma, ppo.cfg.gae_lambda)
        return ppo.update()

    benchmark(iteration)
