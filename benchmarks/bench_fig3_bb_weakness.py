"""Figure 3: the adversary exposes buffer-based rate adaptation's weakness.

The adversary trained against BB produces a trace that parks the client
buffer inside BB's switching band, forcing constant bitrate oscillation;
the offline optimum on the same trace starts low and climbs smoothly.
"""

import numpy as np
from conftest import write_results

from repro.adversary.generation import rollout_abr_adversary
from repro.analysis import ascii_timeseries, format_table
from repro.experiments import run_bb_weakness_experiment
from repro.traces.random_traces import random_abr_traces
from repro.abr.protocols import BufferBased, run_session


def pick_most_oscillating_trace(adversary, n=8):
    """Roll the adversary several times; keep the most BB-hostile trace."""
    best = None
    for _ in range(n):
        roll = rollout_abr_adversary(adversary.trainer, adversary.env, name="anti-bb")
        if best is None or roll.target_qoe_mean < best.target_qoe_mean:
            best = roll
    return best.trace


def test_fig3_bb_on_adversarial_trace(benchmark, video48, adversary_vs_bb):
    trace = pick_most_oscillating_trace(adversary_vs_bb)
    bb = BufferBased()
    experiment = benchmark.pedantic(
        run_bb_weakness_experiment,
        args=(video48, trace, bb),
        rounds=1,
        iterations=1,
    )

    lines = ["Figure 3 -- BB on an adversarial trace (vs offline optimum)\n"]
    lines.append("BB bitrate selection (kbps):")
    lines.append(ascii_timeseries(experiment.bb_bitrates_kbps, label="chunk index ->"))
    lines.append("client buffer (seconds):")
    lines.append(ascii_timeseries(experiment.bb_buffers_s, label="chunk index ->"))
    lines.append("adversary bandwidth (Mbps):")
    lines.append(ascii_timeseries(trace.bandwidths_mbps, label="chunk index ->"))
    lines.append("offline optimum bitrate (kbps):")
    lines.append(ascii_timeseries(experiment.optimal_bitrates_kbps, label="chunk index ->"))
    lines.append("")
    lines.append(
        format_table(
            ["metric", "bb", "offline optimum"],
            [
                ["QoE (total)", experiment.bb_qoe_total, experiment.optimal_qoe_total],
                ["bitrate switches", experiment.bb_switches, experiment.optimal_switches],
            ],
        )
    )
    lines.append(
        f"\nfraction of time buffer inside BB's switching band "
        f"{bb.switching_band}: {experiment.fraction_in_switching_band:.2f}"
    )

    # Baseline: BB on random traces oscillates much less.
    random_switches = []
    for rt in random_abr_traces(10, seed=5, n_segments=48):
        result = run_session(video48, rt, BufferBased(), chunk_indexed=True)
        random_switches.append(int(np.count_nonzero(np.diff(result.bitrates_kbps))))
    lines.append(
        f"BB switches: adversarial {experiment.bb_switches} vs random traces "
        f"mean {np.mean(random_switches):.1f}"
    )

    # Shape assertions: the optimum dominates, with far fewer switches,
    # and the adversary keeps the buffer in the switching band more than
    # chance would.
    assert experiment.optimal_qoe_total > experiment.bb_qoe_total
    assert experiment.optimal_switches < experiment.bb_switches
    assert experiment.bb_switches >= np.mean(random_switches)
    assert experiment.fraction_in_switching_band > 0.3

    benchmark.extra_info["bb_qoe"] = experiment.bb_qoe_total
    benchmark.extra_info["opt_qoe"] = experiment.optimal_qoe_total
    benchmark.extra_info["bb_switches"] = experiment.bb_switches
    text = "\n".join(lines)
    write_results("fig3_bb_weakness", text)
    print("\n" + text)
