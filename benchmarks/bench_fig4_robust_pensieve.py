"""Figure 4: adversarial training improves Pensieve's QoE.

The section-2.3 pipeline trains Pensieve on a benign corpus, pauses at
90% (and 70%) of the iterations to train an adversary and generate
traces, then finishes training on the augmented corpus.  The paper
reports improvements "across all test sets", concentrated in the 5th
percentile, with the most notable gain for broadband-training/3G-testing
(the benign corpus lacking the challenges of the harsher one).
"""

import numpy as np
from conftest import scaled, tuned_abr_adversary_config, write_results

from repro.analysis import format_table
from repro.experiments import run_robustness_experiment
from repro.traces.synthetic import make_dataset

VARIANTS = ("without", "adv@70%", "adv@90%")


def run_both_datasets(video):
    test_sets = {
        "broadband": make_dataset("broadband", 40, seed=900),
        "3g": make_dataset("3g", 40, seed=901),
    }
    experiments = {}
    for dataset in ("broadband", "3g"):
        # 12 adversarial traces into a 60-trace corpus (~17%): enough to
        # matter, few enough to avoid overfitting to edge cases (the
        # paper's section-2.3 concern).
        corpus = make_dataset(dataset, 60, seed=100)
        experiments[dataset] = run_robustness_experiment(
            video,
            corpus,
            test_sets,
            dataset,
            total_steps=scaled(120_000),
            adversary_steps=scaled(50_000),
            n_adversarial_traces=12,
            seed=0,
            adversary_config=tuned_abr_adversary_config(),
        )
    return experiments


def test_fig4_adversarial_training(benchmark, video48):
    experiments = benchmark.pedantic(run_both_datasets, args=(video48,),
                                     rounds=1, iterations=1)

    rows_mean, rows_p5 = [], []
    for train_set, experiment in experiments.items():
        for test_set in ("broadband", "3g"):
            mean_row = [f"{train_set}->{test_set}"]
            p5_row = [f"{train_set}->{test_set}"]
            for variant in VARIANTS:
                mean, p5 = experiment.qoe[variant][test_set]
                mean_row.append(mean)
                p5_row.append(p5)
            rows_mean.append(mean_row)
            rows_p5.append(p5_row)

    header = ["train->test", *VARIANTS]
    text = (
        "Figure 4 -- QoE with adversarial training\n\n"
        "Mean QoE:\n" + format_table(header, rows_mean) + "\n\n"
        "5th percentile QoE:\n" + format_table(header, rows_p5) + "\n"
    )

    # Shape checks.
    # (1) Distribution shift: broadband-trained Pensieve is at its worst
    # on 3G (the premise of the most-notable-gain claim).
    bb_exp = experiments["broadband"]
    assert bb_exp.qoe["without"]["3g"][0] < bb_exp.qoe["without"]["broadband"][0]
    # (2) Adversarial training helps the tail on balance: the mean
    # 5th-percentile delta over all train/test combos and both switch
    # points is positive.
    deltas = []
    for experiment in experiments.values():
        for variant in ("adv@70%", "adv@90%"):
            for test_set in ("broadband", "3g"):
                deltas.append(
                    experiment.qoe[variant][test_set][1]
                    - experiment.qoe["without"][test_set][1]
                )
    mean_delta = float(np.mean(deltas))
    text += f"\nmean 5th-percentile delta (adv - without) across combos: {mean_delta:+.3f}\n"
    best = max(deltas)
    text += f"best single-combo 5th-percentile gain: {best:+.3f}\n"
    assert mean_delta > -0.05, "adversarial training degraded the tail on balance"
    assert best > 0.05, "no train/test combo improved its 5th percentile"

    benchmark.extra_info["mean_p5_delta"] = mean_delta
    benchmark.extra_info["best_p5_delta"] = best
    write_results("fig4_robust_pensieve", text)
    print("\n" + text)
