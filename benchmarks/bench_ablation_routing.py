"""Extension: the adversarial framework in a third domain -- routing.

Section 5 argues adversaries "trained in other contexts to cause route
flapping, BGP leaks, or incast might be useful"; the introduction names
RL-driven intradomain routing among the protocols the framework covers.
Here the adversary redistributes a fixed traffic volume to maximize an
RL routing policy's max-link-utilization regret against a static-weight
reference portfolio, and is compared to random gravity matrices.
"""

import numpy as np
from conftest import scaled, write_results

from repro.analysis import format_table
from repro.routing import (
    abilene_like,
    gravity_demands,
    train_learned_routing,
    train_routing_adversary,
)

TOTAL_MBPS = 20_000.0


def run_experiment():
    graph = abilene_like()
    rl_policy, _trainer = train_learned_routing(
        graph, TOTAL_MBPS, total_steps=scaled(20_000), seed=0
    )
    adversary = train_routing_adversary(
        rl_policy, graph, TOTAL_MBPS, total_steps=scaled(25_000), seed=1
    )

    # Deterministic adversarial episode.
    env = adversary.env
    obs = env.reset()
    adv_regrets, adv_mlus = [], []
    done = False
    while not done:
        action = adversary.trainer.predict(obs, deterministic=True)
        obs, _r, done, info = env.step(action)
        adv_regrets.append(info["regret"])
        adv_mlus.append(info["target_mlu"])

    # Random gravity matrices as the baseline "search".
    rand_regrets, rand_mlus = [], []
    for i in range(32):
        demands = gravity_demands(graph, np.random.default_rng(500 + i), TOTAL_MBPS)
        target = rl_policy.mlu(graph, demands)
        ref = env.reference_mlu(demands)
        rand_regrets.append(target - ref)
        rand_mlus.append(target)
    return {
        "adversarial": (float(np.mean(adv_regrets)), float(np.max(adv_mlus))),
        "random": (float(np.mean(rand_regrets)), float(np.max(rand_mlus))),
    }


def test_routing_adversary(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["demand source", "mean MLU regret vs reference", "worst target MLU"],
        [[name, *vals] for name, vals in results.items()],
    )
    text = (
        "Extension -- routing adversary vs RL traffic engineering "
        "(Abilene-like, fixed volume)\n\n" + table + "\n"
    )
    write_results("ablation_routing", text)
    print("\n" + text)

    # The adversary's matrices must expose more routing regret than
    # random gravity matrices do.
    assert results["adversarial"][0] > results["random"][0]
    benchmark.extra_info["adversarial_regret"] = results["adversarial"][0]
    benchmark.extra_info["random_regret"] = results["random"][0]
