"""Benchmark: the multi-flow CC emulator fast path.

Raw packets/sec of :class:`repro.cc.multiflow.MultiFlowEmulator` driving
2-4 contending senders under random Table-1 adversarial conditions,
against a frozen copy of the pre-fast-path stack -- the naive emulator
(string event kinds compared in heapq tuples, a separate ``deliver``
event, one ``rng.random()`` draw per packet) on the seed-era link
(property-computed rates, O(queue) byte sums) with the seed-era sender
bookkeeping re-instated (O(inflight) loss scan per ack, per-call
property chains for BBR's cwnd/pacing).  The baseline is kept verbatim
in this file / reused from ``bench_cc_emulator.py`` so the comparison
survives the source tree moving on; do not "improve" it -- its slowness
is the point.

Methodology (the same bar the single-flow bench set, plus repeats):

- *identity check first*: before any timing, each mix is run through
  both implementations and the per-flow interval stats and link counters
  must match bit for bit (``float.hex()`` digests) -- a speedup over an
  implementation computing something else would be meaningless;
- *interleaved best-of*: baseline and fast path alternate within each
  repeat, and the reported rate is the best across repeats -- host
  noise (scheduling jitter, frequency scaling) only ever slows a run
  down, so the fastest repeat is the closest to each stack's true
  speed, and taking it on both sides keeps the ratio fair.

Guards: the fast path must be >= 2.5x packets/sec at every mix in full
mode, >= 2x in ``--smoke`` (CI: shorter runs, noisier timings).

Run standalone (no pytest needed):

    PYTHONPATH=src python benchmarks/bench_multiflow.py [--smoke]
"""

from __future__ import annotations

import argparse
import hashlib
import heapq
import os
import sys
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_cc_emulator import ScalarBaselineBBR  # noqa: E402

from repro.adversary.cc_env import CC_ACTION_RANGES  # noqa: E402
from repro.cc.link import TimeVaryingLink  # noqa: E402
from repro.cc.multiflow import FlowStats, MultiFlowEmulator  # noqa: E402
from repro.cc.packet import AckInfo, Packet  # noqa: E402
from repro.cc.protocols.bbr import BBRSender  # noqa: E402
from repro.cc.protocols.copa import CopaSender  # noqa: E402
from repro.cc.protocols.cubic import CubicSender  # noqa: E402
from repro.cc.protocols.reno import RenoSender  # noqa: E402
from repro.cc.protocols.vivace import VivaceSender  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

_TICK_S = 0.1


# ---------------------------------------------------------------------------
# Frozen pre-fast-path stack (the scalar baseline).
# ---------------------------------------------------------------------------


class _SeedEraSenderMixin:
    """Re-instates the seed-era base-class bookkeeping that the live tree
    flattened: ``max()``-based sequence tracking, an ``AckInfo`` built
    through keyword arguments, and an O(inflight) loss scan per ack."""

    _DUP_THRESHOLD = 3

    def register_send(self, packet):
        self.inflight[packet.seq] = packet
        self.highest_seq_sent = max(self.highest_seq_sent, packet.seq)

    def handle_ack(self, packet, now):
        if packet.seq not in self.inflight:
            return
        del self.inflight[packet.seq]
        rtt = now - packet.sent_time
        self.last_rtt_s = rtt
        self.srtt_s = rtt if self.srtt_s is None else 0.875 * self.srtt_s + 0.125 * rtt
        self.delivered_bytes += packet.size_bytes
        self.delivered_time = now
        self.total_acked += 1
        interval = now - packet.delivered_time_at_send
        if interval > 0:
            rate = (self.delivered_bytes - packet.delivered_at_send) * 8.0 / interval
        else:
            rate = 0.0
        self.highest_seq_acked = max(self.highest_seq_acked, packet.seq)
        ack = AckInfo(
            seq=packet.seq,
            now=now,
            rtt_s=rtt,
            delivered_bytes=self.delivered_bytes,
            delivery_rate_bps=rate,
            queue_sojourn_s=max(packet.service_start - packet.ingress_time, 0.0),
        )
        self.on_ack(ack)
        self._detect_losses(now)

    def _detect_losses(self, now):
        lost = [
            seq
            for seq in self.inflight
            if seq < self.highest_seq_acked - self._DUP_THRESHOLD
        ]
        for seq in sorted(lost):
            del self.inflight[seq]
            self.total_lost += 1
            self.on_packet_lost(seq, now)


class BaselineCubic(_SeedEraSenderMixin, CubicSender):
    pass


class BaselineReno(_SeedEraSenderMixin, RenoSender):
    pass


class BaselineCopa(_SeedEraSenderMixin, CopaSender):
    pass


class BaselineVivace(_SeedEraSenderMixin, VivaceSender):
    pass


class BaselineLink:
    """The seed-era link: property-computed rates, O(n) queue-byte sums."""

    def __init__(self, bandwidth_mbps, latency_ms, loss_rate=0.0, queue_packets=120):
        self.queue_packets = int(queue_packets)
        self.queue = deque()
        self.busy = False
        self.bytes_delivered = 0
        self.drops_loss = 0
        self.drops_queue = 0
        self.set_conditions(bandwidth_mbps, latency_ms, loss_rate)

    def set_conditions(self, bandwidth_mbps, latency_ms, loss_rate):
        self.bandwidth_mbps = float(bandwidth_mbps)
        self.latency_ms = float(latency_ms)
        self.loss_rate = float(loss_rate)

    @property
    def rate_bps(self):
        return self.bandwidth_mbps * 1e6

    @property
    def one_way_delay_s(self):
        return self.latency_ms / 1000.0 / 2.0

    def service_time(self, packet):
        return packet.size_bytes * 8.0 / self.rate_bps

    @property
    def queue_full(self):
        return len(self.queue) >= self.queue_packets

    def enqueue(self, packet):
        self.queue.append(packet)

    def dequeue(self):
        return self.queue.popleft()

    def queue_bytes(self):
        return sum(p.size_bytes for p in self.queue)

    def queuing_delay_estimate_s(self):
        return self.queue_bytes() * 8.0 / self.rate_bps


@dataclass
class _BaselineFlow:
    sender: object
    next_seq: int = 0
    send_blocked: bool = False
    last_progress: float = 0.0
    delivered_bytes_interval: int = 0


class BaselineMultiFlowEmulator:
    """Verbatim pre-fast-path multi-flow event loop: string kinds all in
    one heap, a separate deliver hop, one rng draw per packet."""

    def __init__(self, senders, link, seed=0, start_stagger_s=0.0):
        self.link = link
        self.rng = np.random.default_rng(seed)
        self.now = 0.0
        self._events = []
        self._counter = 0
        self.flows = [_BaselineFlow(sender=s) for s in senders]
        for index, _flow in enumerate(self.flows):
            self._schedule(index * start_stagger_s, "send", index, None)
        self._schedule(_TICK_S, "tick", -1, None)

    def _schedule(self, t, kind, flow, packet):
        self._counter += 1
        heapq.heappush(self._events, (t, self._counter, kind, flow, packet))

    def run_until(self, t_end):
        while self._events and self._events[0][0] <= t_end:
            t, _count, kind, flow_index, packet = heapq.heappop(self._events)
            self.now = t
            if kind == "send":
                self._on_send_timer(flow_index)
            elif kind == "egress":
                self._on_egress()
            elif kind == "deliver":
                self._schedule(self.now + self.link.one_way_delay_s, "ack",
                               flow_index, packet)
            elif kind == "ack":
                self._on_ack(flow_index, packet)
            elif kind == "tick":
                self._on_tick()
        self.now = t_end

    def _on_send_timer(self, flow_index):
        flow = self.flows[flow_index]
        if not flow.sender.can_send():
            flow.send_blocked = True
            return
        packet = Packet(
            seq=flow.next_seq,
            size_bytes=flow.sender.mss,
            sent_time=self.now,
            delivered_at_send=flow.sender.delivered_bytes,
            delivered_time_at_send=flow.sender.delivered_time,
        )
        flow.next_seq += 1
        flow.sender.register_send(packet)
        if self.rng.random() >= self.link.loss_rate:
            if not self.link.queue_full:
                packet.ingress_time = self.now
                packet.owner = flow_index
                self.link.enqueue(packet)
                if not self.link.busy:
                    self._start_service()
            else:
                self.link.drops_queue += 1
        else:
            self.link.drops_loss += 1
        rate = max(flow.sender.pacing_rate_bps(self.now), 1e3)
        self._schedule(self.now + flow.sender.mss * 8.0 / rate, "send",
                       flow_index, None)

    def _start_service(self):
        self.link.busy = True
        head = self.link.queue[0]
        head.service_start = self.now
        self._schedule(self.now + self.link.service_time(head), "egress", -1, None)

    def _on_egress(self):
        packet = self.link.dequeue()
        owner = packet.owner
        self.link.bytes_delivered += packet.size_bytes
        self.flows[owner].delivered_bytes_interval += packet.size_bytes
        self._schedule(self.now + self.link.one_way_delay_s, "deliver", owner, packet)
        if self.link.queue:
            self._start_service()
        else:
            self.link.busy = False

    def _on_ack(self, flow_index, packet):
        flow = self.flows[flow_index]
        flow.sender.handle_ack(packet, self.now)
        flow.last_progress = self.now
        if flow.send_blocked and flow.sender.can_send():
            flow.send_blocked = False
            self._schedule(self.now, "send", flow_index, None)

    def _on_tick(self):
        for index, flow in enumerate(self.flows):
            sender = flow.sender
            if sender.inflight and self.now - flow.last_progress > sender.rto_s():
                sender.handle_timeout(self.now)
                flow.last_progress = self.now
                if flow.send_blocked:
                    flow.send_blocked = False
                    self._schedule(self.now, "send", index, None)
        self._schedule(self.now + _TICK_S, "tick", -1, None)

    def set_conditions(self, bandwidth_mbps, latency_ms, loss_rate):
        self.link.set_conditions(bandwidth_mbps, latency_ms, loss_rate)

    def run_interval(self, dt):
        for flow in self.flows:
            flow.delivered_bytes_interval = 0
        self.run_until(self.now + dt)
        return [
            FlowStats(
                bytes_delivered=flow.delivered_bytes_interval,
                throughput_mbps=flow.delivered_bytes_interval * 8.0 / dt / 1e6,
            )
            for flow in self.flows
        ]


# ---------------------------------------------------------------------------
# Mixes, identity check, measurement.
# ---------------------------------------------------------------------------

#: (label, live sender classes, baseline sender classes).  All five
#: protocols appear across the 2/3/4-flow mixes.
# One mix per flow count, BBR-anchored (the paper's protagonist protocol
# and the matrix's busiest row); the three mixes together exercise all
# five senders.
MIXES = [
    ("2 flows (bbr+vivace)",
     [BBRSender, VivaceSender],
     [ScalarBaselineBBR, BaselineVivace]),
    ("3 flows (bbr+cubic+vivace)",
     [BBRSender, CubicSender, VivaceSender],
     [ScalarBaselineBBR, BaselineCubic, BaselineVivace]),
    ("4 flows (bbr+reno+copa+vivace)",
     [BBRSender, RenoSender, CopaSender, VivaceSender],
     [ScalarBaselineBBR, BaselineReno, BaselineCopa, BaselineVivace]),
]

_STAGGER_S = 0.05


def _actions(n_intervals):
    (bw_lo, bw_hi), (lat_lo, lat_hi), (loss_lo, loss_hi) = CC_ACTION_RANGES.values()
    u = np.random.default_rng(1).random((n_intervals, 3))
    return np.column_stack([
        bw_lo + (bw_hi - bw_lo) * u[:, 0],
        lat_lo + (lat_hi - lat_lo) * u[:, 1],
        loss_lo + (loss_hi - loss_lo) * u[:, 2],
    ])


def _build(emulator_cls, link_cls, sender_classes, seed):
    (bw_lo, bw_hi), (lat_lo, lat_hi), _ = CC_ACTION_RANGES.values()
    link = link_cls((bw_lo + bw_hi) / 2, (lat_lo + lat_hi) / 2, 0.0, queue_packets=120)
    return emulator_cls(
        [cls() for cls in sender_classes], link, seed=seed,
        start_stagger_s=_STAGGER_S,
    )


def _packets_sent(emu):
    packets = getattr(emu, "packets_sent", None)
    if packets is None:
        packets = sum(flow.next_seq for flow in emu.flows)
    return packets


def run_mix(emulator_cls, link_cls, sender_classes, actions, digest=False, seed=0):
    """Drive one emulator through ``actions``; return (packets, elapsed)
    or, with ``digest=True``, the per-flow outcome digest instead."""
    emu = _build(emulator_cls, link_cls, sender_classes, seed)
    h = hashlib.sha256() if digest else None
    start = time.perf_counter()
    for bw, lat, loss in actions:
        emu.set_conditions(bw, lat, loss)
        stats = emu.run_interval(0.03)
        if h is not None:
            for s in stats:
                h.update(str(s.bytes_delivered).encode())
                h.update(float(s.throughput_mbps).hex().encode())
    elapsed = time.perf_counter() - start
    if h is not None:
        link = emu.link
        h.update(str(link.bytes_delivered).encode())
        h.update(str(link.drops_loss).encode())
        h.update(str(link.drops_queue).encode())
        return h.hexdigest()
    return _packets_sent(emu), elapsed


def check_identity(live_senders, base_senders, n_intervals):
    """Bit-identical per-flow stats + link counters across both stacks."""
    actions = _actions(n_intervals)
    fast = run_mix(MultiFlowEmulator, TimeVaryingLink, live_senders,
                   actions, digest=True)
    base = run_mix(BaselineMultiFlowEmulator, BaselineLink, base_senders,
                   actions, digest=True)
    return fast == base


def measure_mix(live_senders, base_senders, n_intervals, repeats):
    """Interleaved best-of packets/sec for (baseline, fast path).

    Interleaving exposes both stacks to the same host-noise regime;
    best-of (max rate per side) is the standard estimator under
    one-sided noise -- scheduling jitter and frequency scaling only ever
    slow a run down, so the fastest repeat is the closest to each
    stack's true speed, and taking it on *both* sides keeps the ratio
    fair.
    """
    actions = _actions(n_intervals)
    base_rates, fast_rates = [], []
    for rep in range(repeats):
        packets, elapsed = run_mix(
            BaselineMultiFlowEmulator, BaselineLink, base_senders, actions, seed=rep
        )
        base_rates.append(packets / elapsed)
        packets, elapsed = run_mix(
            MultiFlowEmulator, TimeVaryingLink, live_senders, actions, seed=rep
        )
        fast_rates.append(packets / elapsed)
    return max(base_rates), max(fast_rates)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="smoke-test sizes (CI): fewer intervals and repeats, 2x floor",
    )
    args = parser.parse_args()
    n_intervals = 400 if args.smoke else 2000
    n_check = 200 if args.smoke else 400
    repeats = 3 if args.smoke else 5
    floor = 2.0 if args.smoke else 2.5

    lines = [
        "Multi-flow CC emulator fast path (random Table-1 actions)",
        f"host cores: {os.cpu_count() or 1}",
        f"{n_intervals} intervals x 30 ms, best of {repeats} interleaved repeats",
        "",
        f"{'mix':>32} {'baseline pps':>13} {'fast pps':>10} {'speedup':>8}",
    ]
    print("\n".join(lines))

    status = 0
    for label, live_senders, base_senders in MIXES:
        if not check_identity(live_senders, base_senders, n_check):
            print(f"FAIL: {label}: fast path diverged from the baseline numerics")
            return 1
        base_pps, fast_pps = measure_mix(
            live_senders, base_senders, n_intervals, repeats
        )
        speedup = fast_pps / base_pps
        row = f"{label:>32} {base_pps:>13.0f} {fast_pps:>10.0f} {speedup:>7.2f}x"
        lines.append(row)
        print(row)
        if speedup < floor:
            print(f"FAIL: {label} at {speedup:.2f}x, below the {floor}x floor")
            status = 1

    table = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "bench_multiflow.txt"
    out.write_text(table)
    print(f"\nwrote {out}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
