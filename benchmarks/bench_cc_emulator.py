"""Benchmark: the CC emulator fast path and process-parallel rollouts.

Two layers, matching the two halves of the optimization work:

1. *Raw emulator*: packets/sec and intervals/sec of the packet-level
   event loop driving a BBR sender under random Table-1 adversarial
   conditions.  The baseline is a frozen copy of the pre-fast-path
   implementation (string event kinds, a separate ``deliver`` hop,
   per-packet ``rng.random()`` draws, list-append sojourn accumulation
   and an O(queue) byte sum), kept in this file so the comparison
   survives the source tree moving on.
2. *Adversary training loop*: ``collect_rollout`` steps/sec of the CC
   adversary PPO -- the scalar seed loop (baseline emulator, n_envs=1)
   against the fast path at n_envs=1 and SyncVecEnv/SubprocVecEnv
   widths.  On a single-core box the win comes from the emulator fast
   path and from amortizing the policy forward across envs, not from
   true core parallelism.

Guards (CI runs ``--smoke``):

- the raw fast path must be >= 2x the scalar baseline (enforced even in
  smoke mode: it is a single-process CPU loop with stable timing);
- the full run additionally requires >= 3x adversary steps/sec for the
  fast path + SubprocVecEnv at n_envs=8 vs the scalar seed loop.  This
  is a *parallelism* criterion, so it is enforced only on hosts with at
  least 4 cores: with one core the subprocess workers time-slice a
  single CPU and the backend is pure IPC overhead by construction
  (measured floor ~75 us per pipe round trip), which no amount of
  emulator optimization can parallelize away.

Run standalone (no pytest needed):

    PYTHONPATH=src python benchmarks/bench_cc_emulator.py [--smoke]
"""

from __future__ import annotations

import argparse
import heapq
import os
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path

import numpy as np

import repro.adversary.cc_env as cc_env_mod
from repro.adversary.cc_env import CC_ACTION_RANGES, CcAdversaryEnv
from repro.cc.network import IntervalStats, PacketNetworkEmulator
from repro.cc.link import TimeVaryingLink
from repro.cc.packet import Packet
from repro.cc.protocols.bbr import BBRSender
from repro.rl.ppo import PPO, PPOConfig

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

_TICK_S = 0.1


# ---------------------------------------------------------------------------
# Frozen pre-fast-path implementation (the "scalar seed loop" baseline).
# Verbatim behaviour of the emulator, link and sender bookkeeping before
# the fast path landed; do not "improve" it -- its slowness is the point.
# ---------------------------------------------------------------------------


class ScalarBaselineBBR(BBRSender):
    """BBR with the seed-era base-class bookkeeping re-instated:
    an O(inflight) loss scan per ack and per-call property chains for
    cwnd/pacing (the live tree flattens both)."""

    _DUP_THRESHOLD = 3

    def register_send(self, packet):
        self.inflight[packet.seq] = packet
        self.highest_seq_sent = max(self.highest_seq_sent, packet.seq)

    def handle_ack(self, packet, now):
        if (
            packet.seq in self.inflight
            and packet.delivered_at_send >= self._next_round_delivered
        ):
            self.round_count += 1
            self._next_round_delivered = self.delivered_bytes + packet.size_bytes
        if packet.seq not in self.inflight:
            return
        del self.inflight[packet.seq]
        rtt = now - packet.sent_time
        self.last_rtt_s = rtt
        self.srtt_s = (
            rtt if self.srtt_s is None else 0.875 * self.srtt_s + 0.125 * rtt
        )
        self.delivered_bytes += packet.size_bytes
        self.delivered_time = now
        self.total_acked += 1
        interval = now - packet.delivered_time_at_send
        if interval > 0:
            rate = (self.delivered_bytes - packet.delivered_at_send) * 8.0 / interval
        else:
            rate = 0.0
        self.highest_seq_acked = max(self.highest_seq_acked, packet.seq)
        from repro.cc.packet import AckInfo

        ack = AckInfo(
            seq=packet.seq,
            now=now,
            rtt_s=rtt,
            delivered_bytes=self.delivered_bytes,
            delivery_rate_bps=rate,
            queue_sojourn_s=max(packet.service_start - packet.ingress_time, 0.0),
        )
        self.on_ack(ack)
        self._detect_losses(now)

    def on_ack(self, ack):
        # Seed BBR.on_ack: round accounting lived in a handle_ack wrapper
        # (inlined above), so on_ack only runs the filters/state machine.
        self._update_filters(ack)
        self._update_state(ack.now)

    def _detect_losses(self, now):
        lost = [
            seq
            for seq in self.inflight
            if seq < self.highest_seq_acked - self._DUP_THRESHOLD
        ]
        for seq in sorted(lost):
            del self.inflight[seq]
            self.total_lost += 1
            self.on_packet_lost(seq, now)

    def pacing_rate_bps(self, now):
        return self.pacing_gain * self.max_bw_bps

    @property
    def cwnd_packets(self):
        if self.mode == self.PROBE_RTT:
            return self.min_cwnd_packets
        gain = self.HIGH_GAIN if self.mode == self.STARTUP else 2.0
        return max(int(gain * self._bdp_packets()), self.min_cwnd_packets)


class ScalarBaselineLink:
    """The original link: property-computed rates, O(n) queue-byte sums."""

    def __init__(self, bandwidth_mbps, latency_ms, loss_rate=0.0, queue_packets=120):
        self.queue_packets = int(queue_packets)
        self.queue = deque()
        self.busy = False
        self.bytes_delivered = 0
        self.drops_loss = 0
        self.drops_queue = 0
        self.set_conditions(bandwidth_mbps, latency_ms, loss_rate)

    def set_conditions(self, bandwidth_mbps, latency_ms, loss_rate):
        self.bandwidth_mbps = float(bandwidth_mbps)
        self.latency_ms = float(latency_ms)
        self.loss_rate = float(loss_rate)

    @property
    def rate_bps(self):
        return self.bandwidth_mbps * 1e6

    @property
    def one_way_delay_s(self):
        return self.latency_ms / 1000.0 / 2.0

    def service_time(self, packet):
        return packet.size_bytes * 8.0 / self.rate_bps

    @property
    def queue_full(self):
        return len(self.queue) >= self.queue_packets

    def queue_bytes(self):
        return sum(p.size_bytes for p in self.queue)

    def queuing_delay_estimate_s(self):
        return self.queue_bytes() * 8.0 / self.rate_bps


class ScalarBaselineEmulator:
    """The original event loop: string kinds, separate deliver event,
    one rng draw per packet, list-append interval accumulators."""

    def __init__(self, sender, link, seed=0):
        self.sender = sender
        self.link = link
        self.rng = np.random.default_rng(seed)
        self.now = 0.0
        self._events = []
        self._counter = 0
        self._next_seq = 0
        self._send_blocked = False
        self._last_progress = 0.0
        self._interval_bytes = 0
        self._interval_sojourns = []
        self._interval_drops_loss = 0
        self._interval_drops_queue = 0
        self.history = []
        self._schedule(0.0, "send", None)
        self._schedule(_TICK_S, "tick", None)

    def _schedule(self, t, kind, packet):
        self._counter += 1
        heapq.heappush(self._events, (t, self._counter, kind, packet))

    def run_until(self, t_end):
        if t_end < self.now:
            raise ValueError("cannot run backwards in time")
        while self._events and self._events[0][0] <= t_end:
            t, _count, kind, packet = heapq.heappop(self._events)
            self.now = t
            if kind == "send":
                self._on_send_timer()
            elif kind == "egress":
                self._on_egress()
            elif kind == "deliver":
                self._schedule(self.now + self.link.one_way_delay_s, "ack", packet)
            elif kind == "ack":
                self._on_ack(packet)
            elif kind == "tick":
                self._on_tick()
        self.now = t_end

    def _transmit(self):
        sender = self.sender
        packet = Packet(
            seq=self._next_seq,
            size_bytes=sender.mss,
            sent_time=self.now,
            delivered_at_send=sender.delivered_bytes,
            delivered_time_at_send=sender.delivered_time,
        )
        self._next_seq += 1
        sender.register_send(packet)
        if self.rng.random() < self.link.loss_rate:
            self.link.drops_loss += 1
            self._interval_drops_loss += 1
            return
        if self.link.queue_full:
            self.link.drops_queue += 1
            self._interval_drops_queue += 1
            return
        packet.ingress_time = self.now
        self.link.queue.append(packet)
        if not self.link.busy:
            self._start_service()

    def _on_send_timer(self):
        if not self.sender.can_send():
            self._send_blocked = True
            return
        self._transmit()
        rate = max(self.sender.pacing_rate_bps(self.now), 1e3)
        self._schedule(self.now + self.sender.mss * 8.0 / rate, "send", None)

    def _on_ack(self, packet):
        self.sender.handle_ack(packet, self.now)
        self._last_progress = self.now
        if self._send_blocked and self.sender.can_send():
            self._send_blocked = False
            self._schedule(self.now, "send", None)

    def _on_tick(self):
        sender = self.sender
        if sender.inflight and self.now - self._last_progress > sender.rto_s():
            sender.handle_timeout(self.now)
            self._last_progress = self.now
            if self._send_blocked:
                self._send_blocked = False
                self._schedule(self.now, "send", None)
        self._schedule(self.now + _TICK_S, "tick", None)

    def _start_service(self):
        self.link.busy = True
        head = self.link.queue[0]
        head.service_start = self.now
        self._schedule(self.now + self.link.service_time(head), "egress", None)

    def _on_egress(self):
        packet = self.link.queue.popleft()
        self.link.bytes_delivered += packet.size_bytes
        self._interval_bytes += packet.size_bytes
        self._interval_sojourns.append(
            max(packet.service_start - packet.ingress_time, 0.0)
        )
        self._schedule(self.now + self.link.one_way_delay_s, "deliver", packet)
        if self.link.queue:
            self._start_service()
        else:
            self.link.busy = False

    def set_conditions(self, bandwidth_mbps, latency_ms, loss_rate):
        self.link.set_conditions(bandwidth_mbps, latency_ms, loss_rate)

    def run_interval(self, dt):
        if dt <= 0:
            raise ValueError("interval must be positive")
        t_start = self.now
        self._interval_bytes = 0
        self._interval_sojourns = []
        self._interval_drops_loss = 0
        self._interval_drops_queue = 0
        self.run_until(t_start + dt)
        capacity_bytes = self.link.rate_bps * dt / 8.0
        stats = IntervalStats(
            t_start=t_start,
            t_end=self.now,
            bandwidth_mbps=self.link.bandwidth_mbps,
            latency_ms=self.link.latency_ms,
            loss_rate=self.link.loss_rate,
            bytes_delivered=self._interval_bytes,
            utilization=min(self._interval_bytes / capacity_bytes, 1.0),
            utilization_raw=self._interval_bytes / capacity_bytes,
            mean_queue_sojourn_s=(
                float(np.mean(self._interval_sojourns))
                if self._interval_sojourns
                else 0.0
            ),
            queue_delay_end_s=self.link.queuing_delay_estimate_s(),
            drops_loss=self._interval_drops_loss,
            drops_queue=self._interval_drops_queue,
        )
        self.history.append(stats)
        return stats


@contextmanager
def scalar_baseline_env():
    """Route CcAdversaryEnv onto the baseline emulator for one measurement."""
    orig_emu = cc_env_mod.PacketNetworkEmulator
    orig_link = cc_env_mod.TimeVaryingLink
    cc_env_mod.PacketNetworkEmulator = ScalarBaselineEmulator
    cc_env_mod.TimeVaryingLink = ScalarBaselineLink
    try:
        yield
    finally:
        cc_env_mod.PacketNetworkEmulator = orig_emu
        cc_env_mod.TimeVaryingLink = orig_link


# ---------------------------------------------------------------------------
# Layer 1: raw emulator throughput.
# ---------------------------------------------------------------------------


def measure_raw(emulator_cls, link_cls, sender_cls, n_intervals, seed=0):
    """(intervals/sec, packets/sec) of one emulator under random actions."""
    (bw_lo, bw_hi), (lat_lo, lat_hi), (loss_lo, loss_hi) = CC_ACTION_RANGES.values()
    sender = sender_cls()
    link = link_cls((bw_lo + bw_hi) / 2, (lat_lo + lat_hi) / 2, 0.0, queue_packets=120)
    emu = emulator_cls(sender, link, seed=seed)
    actions = np.random.default_rng(1).random((n_intervals, 3))
    start = time.perf_counter()
    for bw_u, lat_u, loss_u in actions:
        emu.set_conditions(
            bw_lo + (bw_hi - bw_lo) * bw_u,
            lat_lo + (lat_hi - lat_lo) * lat_u,
            loss_lo + (loss_hi - loss_lo) * loss_u,
        )
        emu.run_interval(0.03)
    elapsed = time.perf_counter() - start
    packets = getattr(emu, "packets_sent", None)
    if packets is None:
        packets = emu._next_seq
    return n_intervals / elapsed, packets / elapsed


# ---------------------------------------------------------------------------
# Layer 2: adversary rollout-collection throughput.
# ---------------------------------------------------------------------------


def measure_adversary(n_envs, backend, steps_per_rollout, repeats, baseline=False):
    """Wall-clock env-steps/sec of the CC adversary's collect_rollout."""
    n_steps = max(steps_per_rollout // n_envs, 8)
    cfg = PPOConfig(
        n_steps=n_steps,
        batch_size=n_steps * n_envs,
        n_envs=n_envs,
        hidden=(4,),
        init_log_std=-0.5,
        vec_backend=backend,
    )
    sender_cls = ScalarBaselineBBR if baseline else BBRSender
    env = CcAdversaryEnv(sender_cls, episode_intervals=200, seed=0)
    trainer = PPO(env, cfg, seed=0)
    try:
        trainer.collect_rollout()  # warm up (first reset, obs-rms init)
        start = time.perf_counter()
        for _ in range(repeats):
            trainer.collect_rollout()
        elapsed = time.perf_counter() - start
    finally:
        if backend == "subproc" and trainer.vec_env is not None:
            trainer.vec_env.close()
    return n_steps * n_envs * repeats / elapsed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="smoke-test sizes (CI): fewer intervals, steps and repeats",
    )
    args = parser.parse_args()
    raw_intervals = 300 if args.smoke else 3000
    steps_per_rollout = 128 if args.smoke else 512
    repeats = 1 if args.smoke else 3

    cores = os.cpu_count() or 1
    lines = [
        "CC emulator fast path + process-parallel rollouts",
        f"host cores: {cores}",
        "",
    ]

    # -- layer 1: raw emulator ------------------------------------------
    base_ips, base_pps = measure_raw(
        ScalarBaselineEmulator, ScalarBaselineLink, ScalarBaselineBBR, raw_intervals
    )
    fast_ips, fast_pps = measure_raw(
        PacketNetworkEmulator, TimeVaryingLink, BBRSender, raw_intervals
    )
    raw_speedup = fast_ips / base_ips
    lines += [
        "Raw emulator (BBR sender, random Table-1 actions):",
        f"{'variant':>18} {'intervals/s':>12} {'packets/s':>11} {'speedup':>8}",
        f"{'scalar baseline':>18} {base_ips:>12.0f} {base_pps:>11.0f} {1.0:>7.2f}x",
        f"{'fast path':>18} {fast_ips:>12.0f} {fast_pps:>11.0f} {raw_speedup:>7.2f}x",
        "",
    ]
    print("\n".join(lines))

    # -- layer 2: adversary steps/sec -----------------------------------
    grid = [
        ("scalar seed loop", 1, "sync", True),
        ("fast n_envs=1", 1, "sync", False),
        ("fast sync x8", 8, "sync", False),
        ("fast subproc x4", 4, "subproc", False),
        ("fast subproc x8", 8, "subproc", False),
    ]
    adv_lines = [
        "Adversary rollout collection (CC adversary vs BBR):",
        f"{'variant':>18} {'steps/sec':>12} {'speedup':>8}",
    ]
    print("\n".join(adv_lines))
    rates = {}
    for label, n_envs, backend, use_baseline in grid:
        if use_baseline:
            with scalar_baseline_env():
                rate = measure_adversary(
                    n_envs, backend, steps_per_rollout, repeats, baseline=True
                )
        else:
            rate = measure_adversary(n_envs, backend, steps_per_rollout, repeats)
        rates[label] = rate
        speedup = rate / rates["scalar seed loop"]
        row = f"{label:>18} {rate:>12.0f} {speedup:>7.2f}x"
        adv_lines.append(row)
        print(row)
    lines += adv_lines

    adv_speedup = rates["fast subproc x8"] / rates["scalar seed loop"]
    if cores < 4 and adv_speedup < 3.0:
        lines += [
            "",
            f"note: subproc x8 at {adv_speedup:.2f}x on a {cores}-core host --",
            "subprocess workers time-slice the same CPU, so the backend pays",
            "IPC without buying parallelism; the 3x bar applies to >=4-core",
            "hosts (see the module docstring).",
        ]

    table = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "bench_cc_emulator.txt"
    out.write_text(table)
    print(f"\nwrote {out}")

    # -- guards ----------------------------------------------------------
    status = 0
    if raw_speedup < 2.0:
        print(f"FAIL: raw fast path {raw_speedup:.2f}x below the 2x floor")
        status = 1
    if adv_speedup < 3.0:
        if args.smoke or cores < 4:
            print(
                f"NOTE: subproc x8 adversary speedup {adv_speedup:.2f}x below 3x "
                f"({cores} core(s) -- bar enforced on >=4-core hosts, full mode)"
            )
        else:
            print(f"FAIL: subproc x8 adversary speedup {adv_speedup:.2f}x below 3x")
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
