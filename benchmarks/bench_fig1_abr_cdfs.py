"""Figure 1: QoE CDFs of pensieve / mpc / bb on three trace corpora.

(a) traces from an adversary trained against MPC,
(b) traces from an adversary trained against Pensieve,
(c) uniformly random traces over the same action space.

Shape claims reproduced: the targeted protocol underperforms the other
protocol on its own adversarial corpus, while random traces produce no
such targeted separation.
"""

import numpy as np
from conftest import write_results

from repro.analysis import ascii_cdf, format_table
from repro.experiments import run_abr_cdf_experiment


def test_fig1_qoe_cdfs(benchmark, video48, abr_protocols, abr_trace_corpora):
    # Exact chunk-indexed replay: one recorded bandwidth per chunk
    # download, reproducing each adversary episode bit-for-bit.  (Wall-
    # clock replay through the standard simulator smears the attack
    # across chunk boundaries and can even flip which protocol suffers;
    # see EXPERIMENTS.md.)
    experiment = benchmark.pedantic(
        run_abr_cdf_experiment,
        args=(video48, abr_trace_corpora, abr_protocols),
        kwargs={"ratio_pairs": [], "chunk_indexed": True},
        rounds=1,
        iterations=1,
    )

    lines = ["Figure 1 -- per-video QoE CDFs (mean QoE per chunk)\n"]
    means = {}
    for corpus_name, proto_qoe in experiment.qoe.items():
        lines.append(f"--- ({corpus_name}) ---")
        lines.append(ascii_cdf(proto_qoe, x_label="QoE"))
        rows = [
            [name, float(np.mean(q)), float(np.median(q)), float(np.min(q))]
            for name, q in proto_qoe.items()
        ]
        lines.append(format_table(["protocol", "mean", "median", "min"], rows))
        lines.append("")
        means[corpus_name] = {name: float(np.mean(q)) for name, q in proto_qoe.items()}

    # Shape assertions (paper, section 3.1): the adversary sabotages the
    # *targeted* protocol, not the network as a whole.
    assert means["anti-mpc"]["mpc"] < means["anti-mpc"]["pensieve"]
    assert means["anti-pensieve"]["pensieve"] < means["anti-pensieve"]["mpc"]
    # On random traces there is no targeted gap of that kind: the
    # adversarial gap must exceed the corresponding random-trace gap.
    random_gap_mpc = means["random"]["pensieve"] - means["random"]["mpc"]
    adv_gap_mpc = means["anti-mpc"]["pensieve"] - means["anti-mpc"]["mpc"]
    assert adv_gap_mpc > random_gap_mpc

    benchmark.extra_info["means"] = means
    text = "\n".join(lines)
    write_results("fig1_abr_cdfs", text)
    print("\n" + text)
