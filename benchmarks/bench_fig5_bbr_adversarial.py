"""Figure 5: BBR's throughput collapses on a 30-second adversarial trace.

Paper claim: the adversary, constrained to Table 1's ranges (all within
BBR's design envelope), reduces BBR's average throughput to 45-65% of
link capacity.  Recorded traces replayed against a fresh BBR reproduce
the damage (the emulator is event-driven, so replays are statistically --
not bit-for-bit -- identical; section 4).
"""

import numpy as np
from conftest import write_results

from repro.analysis import ascii_timeseries, format_table
from repro.cc.metrics import run_sender_on_trace
from repro.cc.protocols.bbr import BBRSender
from repro.experiments import run_bbr_adversarial_experiment
from repro.traces.random_traces import random_cc_traces


def test_fig5_bbr_throughput_collapse(benchmark, cc_adversary_vs_bbr):
    experiment = benchmark.pedantic(
        run_bbr_adversarial_experiment,
        args=(cc_adversary_vs_bbr.trainer, cc_adversary_vs_bbr.env),
        rounds=1,
        iterations=1,
    )

    # Random-trace baseline over the same action space.
    random_fracs = [
        run_sender_on_trace(BBRSender(), t, seed=50 + i).capacity_fraction
        for i, t in enumerate(random_cc_traces(5, seed=3))
    ]

    # 1-second bins of the Figure 5 series for readability.
    def binned(series):
        n = len(series) // 33
        return [float(np.mean(series[i * 33 : (i + 1) * 33])) for i in range(n)]

    lines = ["Figure 5 -- BBR on a 30 s adversarial trace\n"]
    lines.append("available bandwidth (Mbps, 1 s bins):")
    lines.append(ascii_timeseries(binned(experiment.fig5_bandwidth_mbps), label="t ->"))
    lines.append("BBR throughput (Mbps, 1 s bins):")
    lines.append(ascii_timeseries(binned(experiment.fig5_throughput_mbps), label="t ->"))
    lines.append("")
    replay_fracs = [r.capacity_fraction for r in experiment.replayed]
    lines.append(
        format_table(
            ["run", "capacity fraction"],
            [["online adversary (mean of 5)", float(np.mean(experiment.online_capacity_fractions))]]
            + [[f"trace replay {i}", f] for i, f in enumerate(replay_fracs)]
            + [["random traces (mean of 5)", float(np.mean(random_fracs))]],
        )
    )
    lines.append(
        "\npaper: adversary reduces BBR to 45-65% of link capacity; "
        f"measured online: {np.mean(experiment.online_capacity_fractions):.0%}, "
        f"replayed: {np.mean(replay_fracs):.0%}, random baseline: {np.mean(random_fracs):.0%}"
    )

    online = float(np.mean(experiment.online_capacity_fractions))
    replay = float(np.mean(replay_fracs))
    rand = float(np.mean(random_fracs))
    # Shape assertions: a real, trace-reproducible attack, clearly below
    # what random condition churn achieves.
    assert online < 0.70, "adversary failed to suppress BBR online"
    assert replay < 0.70, "recorded traces did not reproduce the attack"
    assert online < rand - 0.1
    assert rand > 0.55  # random churn alone is not the story

    benchmark.extra_info["online_capacity_fraction"] = online
    benchmark.extra_info["replay_capacity_fraction"] = replay
    benchmark.extra_info["random_capacity_fraction"] = rand
    text = "\n".join(lines)
    write_results("fig5_bbr_adversarial", text)
    print("\n" + text)
