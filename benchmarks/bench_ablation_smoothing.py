"""Ablation: the smoothing penalty (the explainability knob of section 2.2).

"The adversary should only introduce changes to the environment if these
trigger bad behavior and avoid injecting unnecessary noise.  This is
captured in our framework by penalizing the adversary for non-smoothness."

Expectation: raising the smoothing weight yields materially smoother
(more explainable) adversarial traces, while the targeted damage (QoE
regret vs the optimum) degrades gracefully rather than vanishing.
"""

import numpy as np
from conftest import scaled, tuned_abr_adversary_config, write_results

from repro.abr.protocols import BufferBased, optimal_plan_dp, run_session
from repro.adversary.abr_env import train_abr_adversary
from repro.adversary.generation import generate_abr_traces
from repro.analysis import format_table

WEIGHTS = (0.0, 1.0, 5.0)


def run_sweep(video):
    rows = {}
    for weight in WEIGHTS:
        result = train_abr_adversary(
            BufferBased(),
            video,
            total_steps=scaled(40_000),
            seed=3,
            config=tuned_abr_adversary_config(),
            smoothing_weight=weight,
        )
        rolls = generate_abr_traces(result.trainer, result.env, 15)
        smoothness = float(np.mean([r.trace.smoothness() for r in rolls]))
        regrets = []
        for roll in rolls:
            opt, _ = optimal_plan_dp(video, roll.trace.bandwidths_mbps)
            bb = run_session(video, roll.trace, BufferBased(), chunk_indexed=True)
            regrets.append((opt - bb.qoe_total) / video.n_chunks)
        rows[weight] = {
            "smoothness": smoothness,
            "regret": float(np.mean(regrets)),
            "target_qoe": float(np.mean([r.target_qoe_mean for r in rolls])),
        }
    return rows


def test_ablation_smoothing_weight(benchmark, video48):
    rows = benchmark.pedantic(run_sweep, args=(video48,), rounds=1, iterations=1)

    table = format_table(
        ["smoothing weight", "trace smoothness (Mbps/step)", "per-chunk regret", "BB QoE"],
        [[w, rows[w]["smoothness"], rows[w]["regret"], rows[w]["target_qoe"]]
         for w in WEIGHTS],
    )
    text = "Ablation -- smoothing penalty weight (ABR adversary vs BB)\n\n" + table + "\n"
    write_results("ablation_smoothing", text)
    print("\n" + text)

    # Heavier penalties must yield smoother traces...
    assert rows[5.0]["smoothness"] < rows[0.0]["smoothness"]
    # ... while the adversary still extracts meaningful regret.
    assert rows[5.0]["regret"] > 0.2
    benchmark.extra_info["smoothness_by_weight"] = {
        str(w): rows[w]["smoothness"] for w in WEIGHTS
    }
