"""Benchmark: the coalescing decision service (repro.serve).

A closed-loop load generator drives concurrent simulated players --
each owning a real client-side ``StreamingSession`` and asking the
service for every chunk decision -- against the serving stack in two
modes per workload:

1. *batch=1 (inline)*: every request answered by the plain serial
   ``AbrPolicy.select`` call.  This is the honest per-request baseline,
   the exact code path ``run_session`` uses.
2. *coalesced*: concurrent requests drained in windows and served with
   ONE batched policy evaluation per window (the PR 6 adapters), plus
   -- for MPC -- the content-addressed plan cache.

Workloads: Pensieve policy heads at production size (1024x512; the
headline row, where per-request NN forwards dominate) and suite size
(64x32; where fixed per-request codec/session cost dominates), and MPC
(where the win comes from plan memoization, not batching: the 6^h scan
vectorizes poorly across many lanes).  Transports: in-process (the
serving strategy minus kernel sockets) and real HTTP over the binary
codec.

Guards (CI runs ``--smoke``):

- every row verifies bitwise against the inline reference replay
  (``mismatches == 0`` -- the serve-layer identity contract);
- coalesced req/s >= 5x batch=1 (>= 3x in smoke mode) for the
  production Pensieve head, in-process.

Run standalone (no pytest needed):

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import statistics
import tempfile
from pathlib import Path

from repro.abr.protocols.mpc import MPC
from repro.abr.video import Video
from repro.exec import ResultCache
from repro.serve import (
    CONTENT_BINARY,
    DecisionService,
    HttpServer,
    HttpTransport,
    InprocTransport,
    make_demo_pensieve,
    run_loadgen,
)
from repro.traces.random_traces import random_abr_traces

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

HEADS = {
    "pensieve-prod": lambda: make_demo_pensieve(hidden=(1024, 512)),
    "pensieve-suite": lambda: make_demo_pensieve(hidden=(64, 32)),
    "mpc": lambda: MPC(robust=False),
}


def build_rows(smoke: bool):
    """(label, head, batch_size, transport, cached) per benchmark row."""
    batch = 64
    rows = [
        ("prod  batch=1    inproc", "pensieve-prod", 1, "inproc", False),
        ("prod  coalesced  inproc", "pensieve-prod", batch, "inproc", False),
        ("prod  batch=1    http", "pensieve-prod", 1, "http", False),
        ("prod  coalesced  http", "pensieve-prod", batch, "http", False),
        ("suite batch=1    inproc", "pensieve-suite", 1, "inproc", False),
        ("suite coalesced  inproc", "pensieve-suite", batch, "inproc", False),
        ("mpc   batch=1    inproc", "mpc", 1, "inproc", False),
        ("mpc   coalesced  inproc", "mpc", batch, "inproc", False),
        ("mpc   coalesced+cache", "mpc", batch, "inproc", True),
    ]
    if smoke:
        keep = {"prod  batch=1    inproc", "prod  coalesced  inproc",
                "prod  coalesced  http", "mpc   coalesced+cache"}
        rows = [r for r in rows if r[0] in keep]
    return rows


async def run_row(video, traces, head, batch_size, transport_kind, cached,
                  players):
    protocol = "mpc" if head == "mpc" else "pensieve"
    cache = ResultCache(tempfile.mkdtemp(prefix="bench_serve_")) if cached else None
    service = DecisionService(
        video, {protocol: HEADS[head]()}, batch_size=batch_size, cache=cache
    )
    reference = HEADS[head]()
    if transport_kind == "http":
        server = HttpServer(service)
        await server.start()
        transport = HttpTransport("127.0.0.1", server.port, connections=64)
        try:
            return await run_loadgen(
                transport, video, traces, protocol, players,
                content_type=CONTENT_BINARY, reference=reference,
            )
        finally:
            await transport.close()
            await server.close()
    await service.start()
    try:
        return await run_loadgen(
            InprocTransport(service), video, traces, protocol, players,
            content_type=CONTENT_BINARY, reference=reference,
        )
    finally:
        await service.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="smoke-test sizes (CI): fewer players/rows, >=3x guard",
    )
    args = parser.parse_args()

    players = 128 if args.smoke else 1000
    n_chunks = 8 if args.smoke else 16
    n_traces = 16 if args.smoke else 64
    floor = 3.0 if args.smoke else 5.0
    repeats = 2 if args.smoke else 3

    video = Video.synthetic(n_chunks=n_chunks, seed=1)
    traces = random_abr_traces(n_traces, seed=0, n_segments=n_chunks)
    rows = build_rows(args.smoke)

    # Interleaved repeats: each pass runs every row back to back, so
    # common-mode host drift lands on both sides of every speedup ratio;
    # the per-row median then drops outlier passes.
    rps: dict[str, list[float]] = {label: [] for label, *_ in rows}
    reports = {}
    mismatches = 0
    errors = 0
    for _ in range(repeats):
        for label, head, batch_size, transport_kind, cached in rows:
            report = asyncio.run(run_row(
                video, traces, head, batch_size, transport_kind, cached,
                players,
            ))
            rps[label].append(report.requests_per_second)
            if label not in reports or (
                report.requests_per_second == statistics.median(rps[label])
            ):
                reports[label] = report
            mismatches += max(report.mismatches, 0)
            errors += report.errors

    n_requests = players * n_chunks
    lines = [
        "Coalescing ABR decision service (repro.serve)",
        f"host cores: {os.cpu_count() or 1}",
        f"workload: {players} concurrent players x {n_chunks}-chunk video "
        f"({n_requests} requests/row, {n_traces} traces, binary codec)",
        f"timing: interleaved median of {repeats} repeats per row; every row "
        "verified bitwise against the inline reference replay",
        "",
        f"{'row':<26} {'req/s':>8} {'p50 ms':>8} {'p99 ms':>8} {'occupancy':>10}",
    ]
    for label, *_ in rows:
        report = reports[label]
        med = statistics.median(rps[label])
        lat = report.latency_seconds
        occ = (report.server_stats or {}).get("coalescer", {}).get(
            "mean_occupancy", 0.0)
        lines.append(
            f"{label:<26} {med:>8,.0f} {lat['p50'] * 1e3:>8.3f} "
            f"{lat['p99'] * 1e3:>8.3f} {occ:>10.1f}"
        )

    speedup = (statistics.median(rps["prod  coalesced  inproc"])
               / statistics.median(rps["prod  batch=1    inproc"]))
    lines += [
        "",
        f"decision mismatches across all rows: {mismatches}",
        f"request errors across all rows: {errors}",
        f"coalesced vs batch=1 (prod head, inproc): {speedup:.2f}x "
        f"(floor {floor:.0f}x)",
    ]
    if "mpc   coalesced  inproc" in rps and "mpc   batch=1    inproc" in rps:
        # Tracks the lane-tiled plan scan (BatchedMPC._SCAN_LANE_TILE):
        # before tiling, the uncached coalesced MPC row lost to batch=1.
        mpc_speedup = (statistics.median(rps["mpc   coalesced  inproc"])
                       / statistics.median(rps["mpc   batch=1    inproc"]))
        lines.append(
            f"coalesced vs batch=1 (mpc, inproc, uncached): {mpc_speedup:.2f}x"
        )
    print("\n".join(lines))

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "bench_serve.txt"
    out.write_text("\n".join(lines) + "\n")
    latency_out = RESULTS_DIR / "bench_serve_latency.json"
    latency_out.write_text(json.dumps(
        {
            "smoke": args.smoke,
            "players": players,
            "speedup_prod_inproc": speedup,
            "rows": {label: reports[label].summary_dict() for label, *_ in rows},
        },
        indent=2,
    ) + "\n")
    print(f"\nwrote {out} and {latency_out}")

    if mismatches or errors:
        print(f"FAIL: {mismatches} mismatches / {errors} errors "
              "(served decisions must be bitwise identical to inline)")
        return 1
    if speedup < floor:
        print(f"FAIL: coalesced speedup {speedup:.2f}x below {floor:.0f}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
