"""Benchmark: lockstep batched session evaluation (repro.abr.batched).

Measures ``evaluate_protocols`` on a Pensieve-heavy corpus -- the
workload the batched engine exists for, since every serial chunk pays a
full ``MLP.forward`` for one observation -- in three configurations:

1. *serial cold*: the historical in-process loop (``batch_size=0``,
   ``workers=0``, no cache): one policy forward per session per chunk.
   This is ``bench_parallel_eval``'s cold single-process baseline and
   the path every other mode must reproduce bitwise.
2. *batched cold*: the same sessions advanced in lockstep by
   ``BatchedSessionEngine`` at several widths -- one batched forward
   serves every live lane's chunk decision per round.
3. *batched + workers*: batch lanes composed with ``ParallelMap``
   (processes x lanes), reported for reference on multi-core hosts.

Guards (CI runs ``--smoke`` on main):

- every mode must return results identical to the serial loop
  (enforced always -- this is the differential harness's contract,
  see tests/test_batched_identity.py);
- best batched sessions/sec >= 10x serial in full mode, >= 5x in smoke
  mode (smaller corpus amortizes the batch less, and CI runners are
  slower than pinned local hosts).

Run standalone (no pytest needed):

    PYTHONPATH=src python benchmarks/bench_batched_eval.py [--smoke]
"""

from __future__ import annotations

import argparse
import os
import statistics
import time
from pathlib import Path

import numpy as np

from repro.abr.features import feature_dim
from repro.abr.protocols.pensieve import PensieveAgent
from repro.abr.video import Video
from repro.experiments.abr_suite import evaluate_protocols
from repro.rl.policy import ActorCritic
from repro.rl.running_stat import RunningMeanStd
from repro.rl.spaces import Discrete
from repro.traces.random_traces import random_abr_traces

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def make_pensieve() -> PensieveAgent:
    """A frozen-seed Pensieve agent (the suite's 64x32 policy head)."""
    n = 6
    policy = ActorCritic(
        feature_dim(n), Discrete(n), hidden=(64, 32),
        rng=np.random.default_rng(11),
    )
    obs_rms = RunningMeanStd(shape=(feature_dim(n),))
    obs_rms.update(
        np.random.default_rng(12).uniform(0.0, 3.0, size=(64, feature_dim(n)))
    )
    return PensieveAgent(policy, obs_rms=obs_rms, deterministic=True)


def build_workload(smoke: bool):
    video = Video.synthetic(n_chunks=48, seed=1)
    n_traces = 64 if smoke else 256
    traces = random_abr_traces(n_traces, seed=0)
    protocols = {"pensieve": make_pensieve()}
    return video, traces, protocols


def measure(video, traces, protocols, modes, repeats):
    """Interleaved median-of-``repeats`` wall time for every mode.

    ``modes`` maps a label to ``(batch_size, workers)``.  Each repeat
    runs *all* modes back to back before the next repeat starts, so
    common-mode host drift (thermal throttling, a neighbour stealing the
    core mid-bench) lands on every mode of that repeat instead of
    skewing one side of the speedup ratio; the per-mode median then
    drops the outlier repeats.  Back-to-back medians of the serial path
    alone vary by 1.5x on a busy host -- interleaving is what makes the
    guard below reproducible.

    Returns ``{label: (median_seconds, result)}``.
    """
    times = {label: [] for label in modes}
    results = {}
    for _ in range(repeats):
        for label, (batch_size, workers) in modes.items():
            start = time.perf_counter()
            results[label] = evaluate_protocols(
                video, traces, protocols, chunk_indexed=True,
                workers=workers, cache=False, batch_size=batch_size,
            )
            times[label].append(time.perf_counter() - start)
    return {
        label: (statistics.median(times[label]), results[label]) for label in modes
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="smoke-test sizes (CI): smaller corpus, >=5x guard",
    )
    args = parser.parse_args()
    video, traces, protocols = build_workload(args.smoke)
    n_sessions = len(traces) * len(protocols)
    # The widest width equals the corpus size: the whole sweep advances
    # as one batch, which is both the fastest and the most stable mode.
    widths = (8, 32, 64) if args.smoke else (8, 32, 256)
    floor = 5.0 if args.smoke else 10.0
    repeats = 3 if args.smoke else 5

    cores = os.cpu_count() or 1
    modes = {"serial cold": (0, 0)}
    for width in widths:
        modes[f"batched x{width} cold"] = (width, 0)
    if cores >= 2:
        n_workers = 2 if args.smoke else 4
        modes[f"x{widths[-1]} + {n_workers} workers"] = (widths[-1], n_workers)

    timings = measure(video, traces, protocols, modes, repeats)
    serial_t, serial = timings["serial cold"]

    lines = [
        "Batched lockstep session evaluation (repro.abr.batched)",
        f"host cores: {cores}",
        f"workload: {len(traces)} traces x {len(protocols)} protocols "
        f"({n_sessions} Pensieve sessions, 48-chunk video, chunk-indexed)",
        f"timing: interleaved median of {repeats} repeats per mode",
        "",
        f"{'mode':>24} {'seconds':>9} {'sessions/s':>11} {'speedup':>8}",
    ]

    best = 0.0
    for label, (mode_t, result) in timings.items():
        if label != "serial cold":
            if result != serial:
                print(f"FAIL: {label} results differ from the serial loop")
                return 1
            if "workers" not in label:
                best = max(best, serial_t / mode_t)
        lines.append(
            f"{label:>24} {mode_t:>9.3f} "
            f"{n_sessions / mode_t:>11.0f} {serial_t / mode_t:>7.2f}x"
        )

    lines += [
        "",
        f"best batched speedup: {best:.2f}x (floor {floor:.0f}x)",
    ]
    print("\n".join(lines))

    table = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "bench_batched_eval.txt"
    out.write_text(table)
    print(f"\nwrote {out}")

    if best < floor:
        print(f"FAIL: best batched speedup {best:.2f}x below {floor:.0f}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
