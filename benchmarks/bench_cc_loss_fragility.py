"""Section 4's motivating claim: loss-based TCPs collapse under random
loss "even as low as 1%", while BBR (the paper's case study) does not --
which is why attacking BBR requires the learned, probing-aligned strategy
rather than brute loss.
"""

import numpy as np
from conftest import write_results

from repro.analysis import format_table
from repro.cc import BBRSender, CubicSender, RenoSender
from repro.cc.metrics import run_sender_on_trace
from repro.traces.trace import Trace

LOSS_RATES = (0.0, 0.01, 0.02, 0.05)
SENDERS = {"bbr": BBRSender, "cubic": CubicSender, "reno": RenoSender}


def run_sweep():
    results = {}
    for name, cls in SENDERS.items():
        fractions = []
        for loss in LOSS_RATES:
            trace = Trace.constant(12.0, 15.0, latency_ms=40.0, loss_rate=loss)
            run = run_sender_on_trace(cls(), trace, seed=7)
            fractions.append(run.capacity_fraction)
        results[name] = fractions
    return results


def test_cc_loss_fragility(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [[name, *vals] for name, vals in results.items()]
    table = format_table(
        ["sender", *(f"loss {l:.0%}" for l in LOSS_RATES)], rows
    )
    text = (
        "Loss fragility -- capacity fraction on a 12 Mbps / 40 ms link\n\n"
        + table + "\n"
    )
    write_results("cc_loss_fragility", text)
    print("\n" + text)

    # Cubic/Reno collapse at 1% loss; BBR barely notices 2%.
    assert results["cubic"][1] < 0.5 * results["cubic"][0]
    assert results["reno"][1] < 0.6 * results["reno"][0]
    assert results["bbr"][2] > 0.8
    benchmark.extra_info["cubic_at_1pct"] = results["cubic"][1]
    benchmark.extra_info["bbr_at_2pct"] = results["bbr"][2]
