"""Ablation: trace-based vs online adversary (the section-2.1 discussion).

The paper argues a trace-based adversary "might result in a very long
training process since each trace constitutes only a single data point"
and therefore uses online adversaries.  With an equal step budget, the
online adversary should extract more damage from the target.
"""

import numpy as np
from conftest import scaled, tuned_abr_adversary_config, write_results

from repro.abr.protocols import BufferBased, optimal_plan_dp, run_session
from repro.adversary.abr_env import train_abr_adversary
from repro.adversary.generation import generate_abr_traces
from repro.adversary.trace_adversary import TraceAdversaryEnv
from repro.analysis import format_table
from repro.rl.ppo import PPO
from repro.traces.trace import Trace


def regret_of_traces(video, traces):
    regrets = []
    for trace in traces:
        opt, _ = optimal_plan_dp(video, trace.bandwidths_mbps[: video.n_chunks])
        bb = run_session(video, trace, BufferBased(), chunk_indexed=True)
        regrets.append((opt - bb.qoe_total) / video.n_chunks)
    return float(np.mean(regrets))


def run_comparison(video, budget):
    # Online adversary.
    online = train_abr_adversary(
        BufferBased(), video, total_steps=budget, seed=4,
        config=tuned_abr_adversary_config(),
    )
    online_traces = [
        r.trace for r in generate_abr_traces(online.trainer, online.env, 10)
    ]

    # Trace-based adversary: same budget, sparse end-of-trace reward.
    env = TraceAdversaryEnv(BufferBased(), video)
    trainer = PPO(env, tuned_abr_adversary_config(), seed=4)
    trainer.learn(budget)
    trace_based_traces = []
    for _ in range(10):
        obs = env.reset()
        done = False
        while not done:
            obs, _r, done, _i = env.step(trainer.predict(obs, deterministic=False))
        trace_based_traces.append(env.build_trace())

    return {
        "online": regret_of_traces(video, online_traces),
        "trace-based": regret_of_traces(video, trace_based_traces),
    }


def test_ablation_trace_vs_online(benchmark, video48):
    budget = scaled(40_000)
    regrets = benchmark.pedantic(run_comparison, args=(video48, budget),
                                 rounds=1, iterations=1)
    table = format_table(
        ["formulation", "per-chunk regret extracted (same budget)"],
        [[name, value] for name, value in regrets.items()],
    )
    text = (
        f"Ablation -- trace-based vs online adversary ({budget} steps each)\n\n"
        + table + "\n"
    )
    write_results("ablation_trace_vs_online", text)
    print("\n" + text)

    # The paper's design rationale: online trains faster per step.
    assert regrets["online"] > regrets["trace-based"]
    benchmark.extra_info.update(regrets)
