"""Benchmark: parallel session evaluation and the content-addressed cache.

Measures ``evaluate_protocols`` -- the replay loop behind Figures 1-2 and
the Figure 4 evaluation sweep -- in three configurations:

1. *serial cold*: the historical in-process loop (``workers=0``, no
   cache).  This is the baseline every other mode must reproduce
   bitwise.
2. *parallel cold*: the same sessions fanned over a persistent
   ``ProcessPoolExecutor`` (``repro.exec.ParallelMap``).  Sessions are
   independent replays, so the ideal speedup is the worker count.
3. *warm cache*: every session served from ``repro.exec.ResultCache``
   hits (a prior cold pass populated the store), measuring the
   replay-free floor for re-running an experiment.

Guards (CI runs ``--smoke``):

- all modes must return bitwise-identical results (enforced always);
- the second cached pass must serve 100% of sessions from the cache
  (enforced always);
- warm cache must be >= 10x serial in full mode (enforced always: disk
  reads vs MPC replays do not need spare cores);
- parallel >= serial at 2 workers in smoke mode, and >= 3x at 4 workers
  in full mode, are *parallelism* criteria, enforced only on hosts with
  at least 2 (resp. 4) cores -- on fewer cores the pool time-slices one
  CPU and pays pickling for nothing, which is exactly why ``workers=0``
  stays the default.

Run standalone (no pytest needed):

    PYTHONPATH=src python benchmarks/bench_parallel_eval.py [--smoke]
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time
from pathlib import Path

from repro.abr.protocols import MPC, BufferBased
from repro.abr.video import Video
from repro.exec import ResultCache
from repro.experiments.abr_suite import evaluate_protocols
from repro.traces.random_traces import random_abr_traces

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def build_workload(smoke: bool):
    """A corpus evaluation dominated by MPC's per-chunk combo search."""
    video = Video.synthetic(n_chunks=48, seed=1)
    n_traces = 12 if smoke else 40
    traces = random_abr_traces(n_traces, seed=0)
    protocols = {"robust-mpc": MPC()}
    if not smoke:
        protocols["mpc"] = MPC(robust=False)
        protocols["bb"] = BufferBased()
    return video, traces, protocols


def measure(video, traces, protocols, workers, cache):
    start = time.perf_counter()
    result = evaluate_protocols(
        video, traces, protocols, chunk_indexed=True,
        workers=workers, cache=cache,
    )
    return time.perf_counter() - start, result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="smoke-test sizes (CI): fewer traces and protocols, 2 workers",
    )
    args = parser.parse_args()
    video, traces, protocols = build_workload(args.smoke)
    n_workers = 2 if args.smoke else 4
    n_sessions = len(traces) * len(protocols)

    cores = os.cpu_count() or 1
    lines = [
        "Parallel corpus evaluation + content-addressed result cache",
        f"host cores: {cores}",
        f"workload: {len(traces)} traces x {len(protocols)} protocols "
        f"({n_sessions} sessions, 48-chunk video, chunk-indexed)",
        "",
    ]

    serial_t, serial = measure(video, traces, protocols, workers=0, cache=False)
    par_t, par = measure(video, traces, protocols, workers=n_workers, cache=False)
    if par != serial:
        print("FAIL: parallel results differ from the serial loop")
        return 1

    with tempfile.TemporaryDirectory(prefix="bench-cache-") as tmp:
        cache = ResultCache(tmp)
        cold_t, cold = measure(video, traces, protocols, workers=0, cache=cache)
        warm_t, warm = measure(video, traces, protocols, workers=0, cache=cache)
        warm_hits, warm_misses = cache.hits, cache.misses - n_sessions
        cache_line = cache.summary()
    if cold != serial or warm != serial:
        print("FAIL: cached results differ from the serial loop")
        return 1

    par_speedup = serial_t / par_t
    warm_speedup = serial_t / warm_t
    lines += [
        f"{'mode':>24} {'seconds':>9} {'sessions/s':>11} {'speedup':>8}",
        f"{'serial cold':>24} {serial_t:>9.3f} {n_sessions / serial_t:>11.0f} "
        f"{1.0:>7.2f}x",
        f"{f'parallel x{n_workers} cold':>24} {par_t:>9.3f} "
        f"{n_sessions / par_t:>11.0f} {par_speedup:>7.2f}x",
        f"{'cold + cache stores':>24} {cold_t:>9.3f} "
        f"{n_sessions / cold_t:>11.0f} {serial_t / cold_t:>7.2f}x",
        f"{'warm cache':>24} {warm_t:>9.3f} {n_sessions / warm_t:>11.0f} "
        f"{warm_speedup:>7.2f}x",
        "",
        cache_line,
    ]
    print("\n".join(lines))

    if cores < max(n_workers, 2):
        note = [
            "",
            f"note: parallel x{n_workers} at {par_speedup:.2f}x on a "
            f"{cores}-core host -- the pool time-slices one CPU, so the",
            "speedup bars apply to multi-core hosts (see module docstring);",
            "the warm-cache bar is core-independent and enforced here.",
        ]
        lines += note
        print("\n".join(note))

    table = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "bench_parallel_eval.txt"
    out.write_text(table)
    print(f"\nwrote {out}")

    status = 0
    if warm_misses != 0 or warm_hits != n_sessions:
        print(
            f"FAIL: warm pass served {warm_hits}/{n_sessions} sessions "
            f"({warm_misses} misses) -- expected a 100% hit rate"
        )
        status = 1
    if args.smoke:
        if par_t > serial_t and cores >= 2:
            print(
                f"FAIL: parallel x{n_workers} ({par_t:.3f}s) slower than "
                f"serial ({serial_t:.3f}s) on a {cores}-core host"
            )
            status = 1
    else:
        if par_speedup < 3.0 and cores >= 4:
            print(f"FAIL: parallel x{n_workers} speedup {par_speedup:.2f}x below 3x")
            status = 1
        if warm_speedup < 10.0:
            print(f"FAIL: warm-cache speedup {warm_speedup:.2f}x below 10x")
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
