"""Benchmark: white-box observation attacks and the cross-protocol transfer matrix.

Builds the crafted-vs-evaluated grid of ``repro.attacks.transfer``:

- columns: {bb, bola, mpc, robust-mpc} plus three independently seeded
  Pensieve heads trained on the same corpus;
- ``obs:`` rows: FGSM/PGD perturbations crafted with one head's
  gradients and applied to every head's observations (diagonal =
  white-box, off-diagonal = cross-seed transfer).  Non-learning columns
  never consume the feature vector, so observation attacks cannot reach
  them -- those cells equal the benign row *by construction*;
- ``env:`` rows: the paper's Eq. 1 trace adversary crafted against one
  target and replayed chunk-indexed under every column (environment
  attacks transfer to everything).

Also sweeps the FGSM budget into an eps-vs-damage curve and reports the
observation budget whose damage best matches the environment adversary's
Eq. 1 regret -- "how much measurement bias buys the same QoE loss as
full control of the link".

Guards (CI runs ``--smoke``):

- the white-box FGSM diagonal must damage its Pensieve column while
  every non-learning column is untouched (the ISSUE's acceptance cell);
- re-evaluating an attacked row must reproduce QoE bitwise (seeded
  attacks are deterministic) and be served entirely from the result
  cache on the second pass;
- the budget curve's damage must grow from the smallest to the largest
  eps.

Run standalone (no pytest needed):

    PYTHONPATH=src python benchmarks/bench_attack_transfer.py [--smoke]
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.abr.protocols import MPC, Bola, BufferBased
from repro.abr.protocols.pensieve import train_pensieve
from repro.abr.video import Video
from repro.adversary.abr_env import train_abr_adversary
from repro.adversary.generation import generate_abr_traces
from repro.attacks import AttackConfig, attack_budget_curve, mean_env_regret, run_transfer_matrix
from repro.exec import ResultCache
from repro.experiments.abr_suite import evaluate_protocols
from repro.traces.random_traces import random_abr_traces

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def build_heads(video, smoke: bool):
    """Three independently seeded Pensieve heads on a shared corpus."""
    corpus = random_abr_traces(24, seed=100, n_segments=video.n_chunks)
    steps = 6_000 if smoke else 12_000
    heads = {}
    for seed in (0, 1, 2):
        heads[f"pensieve-s{seed}"] = train_pensieve(
            corpus, video, total_steps=steps, seed=seed
        ).agent
    return heads


def build_env_corpora(video, heads, target_name, smoke: bool):
    """Eq. 1 adversarial trace corpora crafted against two targets."""
    steps = 1_536 if smoke else 12_288
    n_traces = 4 if smoke else 12
    corpora = {}
    for label, target in (("bb", BufferBased()), (target_name, heads[target_name])):
        adversary = train_abr_adversary(target, video, total_steps=steps, seed=5)
        rolls = generate_abr_traces(
            adversary.trainer, adversary.env, n_traces, name_prefix=f"anti-{label}"
        )
        corpora[f"env:eq1@{label}"] = [r.trace for r in rolls]
    return corpora


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="smoke-test sizes (CI): tiny heads and corpora")
    parser.add_argument("--workers", type=int, default=0,
                        help="evaluation worker processes")
    args = parser.parse_args()
    smoke = args.smoke

    started = time.perf_counter()
    video = Video.synthetic(n_chunks=24 if smoke else 48, seed=1)
    traces = random_abr_traces(6 if smoke else 20, seed=77,
                               n_segments=video.n_chunks)
    heads = build_heads(video, smoke)
    baselines = {
        "bb": BufferBased(),
        "bola": Bola(),
        "mpc": MPC(robust=False),
        "robust-mpc": MPC(),
    }
    attacks = [AttackConfig(kind="fgsm", norm="linf", eps=0.05)]
    if not smoke:
        attacks += [
            AttackConfig(kind="pgd", norm="linf", eps=0.05, steps=10),
            AttackConfig(kind="pgd", norm="linf", eps=0.05, steps=10,
                         targeted=True),
        ]

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        # The white-box demonstration targets the best-trained head (PPO
        # at bench budgets has seed variance; attacking a policy that is
        # already broken proves nothing).  This pre-pass is served from
        # cache again inside the matrix run.
        head_qoe = evaluate_protocols(video, traces, heads, cache=cache)
        target = max(head_qoe, key=lambda n: float(np.mean(head_qoe[n])))
        env_corpora = build_env_corpora(video, heads, target, smoke)

        matrix = run_transfer_matrix(
            video, traces, heads, baselines, attacks,
            env_corpora=env_corpora, workers=args.workers, cache=cache,
        )
        benign = matrix.benign
        head_names = list(heads)
        fgsm_rows = {
            row.label: row for row in matrix.rows if row.kind == "obs"
        }

        # -- determinism + cache guard: re-run the white-box FGSM row ----
        config = attacks[0]
        row_label = f"obs:{config.label()}@{target}"
        from repro.attacks import AttackedPensieve

        attacked = {
            name: AttackedPensieve(
                agent, config,
                surrogate=None if name == target else heads[target],
            )
            for name, agent in heads.items()
        }
        fresh = evaluate_protocols(video, traces, attacked, cache=False)
        misses_before = cache.misses
        warm = evaluate_protocols(video, traces, attacked, cache=cache)
        cache_ok = cache.misses == misses_before  # second pass: all hits
        replay_means = {n: float(np.mean(q)) for n, q in fresh.items()}
        warm_means = {n: float(np.mean(q)) for n, q in warm.items()}
        deterministic = all(
            replay_means[n] == fgsm_rows[row_label].qoe[n]
            and warm_means[n] == fgsm_rows[row_label].qoe[n]
            for n in head_names
        )

        # -- budget curve vs the environment adversary's regret ----------
        eps_values = [0.0, 0.01, 0.02, 0.05, 0.1]
        curve = attack_budget_curve(
            video, traces, heads[target], attacks[0], eps_values,
            cache=cache,
        )
        env_label = f"env:eq1@{target}"
        env_traces = env_corpora[env_label]
        env_qoes = evaluate_protocols(
            video, env_traces, {target: heads[target]},
            chunk_indexed=True, cache=cache,
        )[target]
        env_regret = mean_env_regret(video, env_traces, env_qoes)
        env_row = next(r for r in matrix.rows if r.label == env_label)
        env_damage = benign.qoe[target] - env_row.qoe[target]
        matched = min(curve, key=lambda p: abs(p.damage - env_damage))

    # -- report ----------------------------------------------------------
    lines = [
        "Observation-space attacks: crafted-vs-evaluated transfer matrix",
        f"video: {video.n_chunks} chunks; eval corpus: {len(traces)} traces; "
        f"heads trained {6_000 if smoke else 12_000} PPO steps (seeds 0/1/2)",
        "",
        "Rows: attack crafted against @<column>; columns: protocol evaluated.",
        "obs: rows perturb the feature vector within an L-inf/L2 budget --",
        "non-learning columns never read it, so those cells equal benign by",
        "construction.  env: rows replay Eq. 1 adversarial traces",
        "(chunk-indexed) -- environment attacks reach every protocol.",
        "",
        matrix.format_table(),
        "",
        f"FGSM budget sweep (white-box vs {target}):",
        f"{'eps':>8} {'mean QoE':>10} {'damage':>8}",
    ]
    for point in curve:
        lines.append(f"{point.eps:>8g} {point.qoe_mean:>10.3f} {point.damage:>8.3f}")
    lines += [
        "",
        f"environment adversary (Eq. 1, vs {target}): damage "
        f"{env_damage:.3f}, mean regret {env_regret:.3f}",
        f"matched observation budget: eps={matched.eps:g} "
        f"(damage {matched.damage:.3f}) -- a {matched.eps:g} L-inf feature "
        "bias costs about as much QoE as full trace control",
        "",
        f"determinism replay: {'OK' if deterministic else 'MISMATCH'}; "
        f"warm cache pass: {'all hits' if cache_ok else 'RECOMPUTED'}",
        f"total wall time: {time.perf_counter() - started:.1f}s",
    ]
    text = "\n".join(lines) + "\n"
    print(text)
    if not smoke:
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / "attack_transfer.txt"
        out.write_text(text)
        print(f"wrote {out}")

    # -- guards ----------------------------------------------------------
    failures = []
    whitebox = fgsm_rows[f"obs:{attacks[0].label()}@{target}"]
    damage = matrix.damage(whitebox, target)
    floor = 0.02 if smoke else 0.15
    if not damage > floor:
        failures.append(
            f"white-box FGSM damage {damage:.3f} below the {floor} floor"
        )
    for name in baselines:
        if whitebox.qoe[name] != benign.qoe[name]:
            failures.append(f"obs attack touched non-learning column {name}")
    if not deterministic:
        failures.append("attacked evaluation not bitwise reproducible")
    if not cache_ok:
        failures.append("warm cache pass recomputed sessions")
    if not curve[-1].damage > curve[0].damage:
        failures.append(
            f"budget sweep not increasing: damage(eps={eps_values[-1]}) = "
            f"{curve[-1].damage:.3f} <= damage(eps={eps_values[0]}) = "
            f"{curve[0].damage:.3f}"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
