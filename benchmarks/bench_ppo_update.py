"""Benchmark: the flat-parameter PPO update path.

Measures ``PPO.update()`` throughput (full clipped-surrogate updates/sec:
``n_epochs`` x ``rollout/batch_size`` minibatches each) for the live
flat-buffer implementation against a frozen copy of the pre-optimization
NN core: per-layer parameter arrays, allocating forward/backward passes,
a per-array Adam with fresh ``m/bc1`` / ``v/bc2`` / ``sqrt`` temporaries
every step, per-array grad-norm clipping, and fancy-indexed minibatch
gathers.  The baseline lives in this file so the comparison survives the
source tree moving on; do not "improve" it -- its allocation behaviour is
the point.

Both sides run the same math on the same synthetic rollout (the live
implementation is bitwise identical to the baseline by construction --
tests/test_flat_identity.py and tests/test_determinism.py pin that), so
the ratio is pure implementation overhead: allocator traffic and
per-array Python dispatch.

Guards (CI runs ``--smoke``):

- the adversary-shaped network (continuous actions, 2x32 hidden,
  batch_size=64, n_epochs=4) must reach >= 1.5x in smoke mode and
  >= 2x in the full run.

Run standalone (no pytest needed):

    PYTHONPATH=src python benchmarks/bench_ppo_update.py [--smoke]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

import numpy as np

from repro.rl.spaces import Box, Discrete

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


# ---------------------------------------------------------------------------
# Frozen pre-flat implementation (seed-era NN core).  Verbatim behaviour
# of layers/network/optim/distributions before the flat-parameter layout
# landed.
# ---------------------------------------------------------------------------


class BaselineDense:
    def __init__(self, in_dim, out_dim, rng):
        limit = np.sqrt(6.0 / (in_dim + out_dim))
        self.W = rng.uniform(-limit, limit, size=(in_dim, out_dim))
        self.b = np.zeros(out_dim)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x = None

    def forward(self, x):
        self._x = x
        return x @ self.W + self.b

    def backward(self, dout):
        self.dW += self._x.T @ dout
        self.db += dout.sum(axis=0)
        return dout @ self.W.T

    def zero_grad(self):
        self.dW[:] = 0.0
        self.db[:] = 0.0

    def gradients(self):
        return [self.dW, self.db]


class BaselineTanh:
    def forward(self, x):
        self._y = np.tanh(x)
        return self._y

    def backward(self, dout):
        return dout * (1.0 - self._y * self._y)


class BaselineLinear:
    def forward(self, x):
        self._x = x
        return x

    def backward(self, dout):
        return dout * np.ones_like(self._x)


class BaselineMLP:
    def __init__(self, sizes, rng):
        self._stack = []
        for i, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            last = i == len(sizes) - 2
            self._stack.append(BaselineDense(fan_in, fan_out, rng))
            self._stack.append(BaselineLinear() if last else BaselineTanh())
        self._dense = [s for s in self._stack if isinstance(s, BaselineDense)]

    def forward(self, x):
        for layer in self._stack:
            x = layer.forward(x)
        return x

    def backward(self, dout):
        for layer in reversed(self._stack):
            dout = layer.backward(dout)
        return dout

    def zero_grad(self):
        for d in self._dense:
            d.zero_grad()

    def parameters(self):
        return [a for d in self._dense for a in (d.W, d.b)]

    def gradients(self):
        # Per-layer list building on every call, like the seed-era MLP.
        grads = []
        for d in self._dense:
            grads.extend(d.gradients())
        return grads


def baseline_clip_grad_norm(grads, max_norm):
    total = float(np.sqrt(sum(float(np.sum(g * g)) for g in grads)))
    if max_norm > 0.0 and total > max_norm:
        scale = max_norm / (total + 1e-12)
        for g in grads:
            g *= scale
    return total


class BaselineAdam:
    def __init__(self, params, lr, beta1=0.9, beta2=0.999, eps=1e-8):
        self.params = list(params)
        self.lr, self.beta1, self.beta2, self.eps = lr, beta1, beta2, eps
        self._m = [np.zeros_like(p) for p in self.params]
        self._v = [np.zeros_like(p) for p in self.params]
        self._t = 0

    def step(self, grads):
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(self.params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


def _softmax(logits):
    z = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


def _log_softmax(logits):
    z = logits - logits.max(axis=-1, keepdims=True)
    return z - np.log(np.exp(z).sum(axis=-1, keepdims=True))


class BaselineCategorical:
    def __init__(self, logits):
        self.logits = np.atleast_2d(np.asarray(logits, dtype=float))
        self.probs = _softmax(self.logits)
        self._log_probs = _log_softmax(self.logits)

    def log_prob(self, actions):
        actions = np.asarray(actions, dtype=int)
        return self._log_probs[np.arange(self.logits.shape[0]), actions]

    def entropy(self):
        return -(self.probs * self._log_probs).sum(axis=-1)

    def log_prob_grad(self, actions):
        actions = np.asarray(actions, dtype=int)
        grad = -self.probs.copy()
        grad[np.arange(self.logits.shape[0]), actions] += 1.0
        return grad

    def entropy_grad(self):
        ent = self.entropy()[:, None]
        return -self.probs * (self._log_probs + ent)


class BaselineDiagGaussian:
    LOG_2PI = float(np.log(2.0 * np.pi))

    def __init__(self, mean, log_std):
        self.mean = np.atleast_2d(np.asarray(mean, dtype=float))
        self.log_std = np.asarray(log_std, dtype=float)
        self.std = np.exp(self.log_std)

    def log_prob(self, actions):
        z = (actions - self.mean) / self.std
        return (-0.5 * z * z - self.log_std - 0.5 * self.LOG_2PI).sum(axis=-1)

    def entropy(self):
        per_dim = self.log_std + 0.5 * (1.0 + self.LOG_2PI)
        return np.full(self.mean.shape[0], float(per_dim.sum()))

    def log_prob_grad(self, actions):
        z = (actions - self.mean) / self.std
        return z / self.std, z * z - 1.0

    def entropy_grad(self):
        return np.ones((self.mean.shape[0], self.mean.shape[1]))


class BaselineUpdater:
    """The seed-era PPO.update() body over per-layer arrays."""

    def __init__(self, obs_dim, act_space, hidden, seed):
        rng = np.random.default_rng(seed)
        self.discrete = isinstance(act_space, Discrete)
        out_dim = act_space.n if self.discrete else act_space.dim
        self.policy_net = BaselineMLP((obs_dim, *hidden, out_dim), rng)
        self.value_net = BaselineMLP((obs_dim, *hidden, 1), rng)
        self.log_std = np.full(out_dim, -0.5)
        self._dlog_std = np.zeros(out_dim)
        params = self.policy_net.parameters()
        grads = self.policy_net.gradients()
        if not self.discrete:
            params = params + [self.log_std]
            grads = grads + [self._dlog_std]
        self.params = params + self.value_net.parameters()
        self.optimizer = BaselineAdam(self.params, lr=2.5e-4)
        self.rng = np.random.default_rng(seed + 1)

    # The seed-era ActorCritic rebuilt the gradient list (and walked the
    # per-layer zero_grad chain) on every minibatch -- keep that cost in
    # the baseline rather than hoisting it.

    def gradients(self):
        grads = self.policy_net.gradients()
        if not self.discrete:
            grads = grads + [self._dlog_std]
        return grads + self.value_net.gradients()

    def zero_grad(self):
        self.policy_net.zero_grad()
        self.value_net.zero_grad()
        if not self.discrete:
            self._dlog_std[:] = 0.0

    def update(self, data, batch_size, n_epochs, clip_range=0.2,
               ent_coef=0.01, vf_coef=0.5, max_grad_norm=0.5):
        obs, actions, log_probs, advantages, returns = data
        n = len(returns)
        stats = {"pi_loss": 0.0, "v_loss": 0.0, "entropy": 0.0, "approx_kl": 0.0,
                 "clip_frac": 0.0, "grad_norm": 0.0}
        n_updates = 0
        for _epoch in range(n_epochs):
            perm = self.rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = perm[start : start + batch_size]
                mb_obs = obs[idx]
                mb_actions = actions[idx]
                mb_old_logp = log_probs[idx]
                mb_returns = returns[idx]
                adv = advantages[idx]
                adv = (adv - adv.mean()) / (adv.std() + 1e-8)
                m = len(idx)
                self.zero_grad()
                out = self.policy_net.forward(mb_obs)
                dist = (BaselineCategorical(out) if self.discrete
                        else BaselineDiagGaussian(out, self.log_std))
                logp = dist.log_prob(mb_actions)
                ratio = np.exp(logp - mb_old_logp)
                surr1 = ratio * adv
                surr2 = np.clip(ratio, 1.0 - clip_range, 1.0 + clip_range) * adv
                active = (surr1 <= surr2).astype(float)
                d_logp = -(adv * ratio * active) / m
                if self.discrete:
                    d_logits = d_logp[:, None] * dist.log_prob_grad(mb_actions)
                    d_logits += (-ent_coef / m) * dist.entropy_grad()
                    self.policy_net.backward(d_logits)
                else:
                    g_mean, g_log_std = dist.log_prob_grad(mb_actions)
                    d_mean = d_logp[:, None] * g_mean
                    d_ls = d_logp[:, None] * g_log_std
                    d_ls += (-ent_coef / m) * dist.entropy_grad()
                    self.policy_net.backward(d_mean)
                    self._dlog_std += d_ls.sum(axis=0)
                values = self.value_net.forward(mb_obs)[:, 0]
                d_values = vf_coef * (values - mb_returns) / m
                self.value_net.backward(d_values[:, None])
                grads = self.gradients()
                grad_norm = baseline_clip_grad_norm(grads, max_grad_norm)
                self.optimizer.step(grads)
                entropy = dist.entropy()
                stats["pi_loss"] += float(-np.minimum(surr1, surr2).mean())
                stats["v_loss"] += float(0.5 * np.mean((values - mb_returns) ** 2))
                stats["entropy"] += float(entropy.mean())
                stats["approx_kl"] += float(np.mean(mb_old_logp - logp))
                stats["clip_frac"] += float(np.mean(np.abs(ratio - 1.0) > clip_range))
                stats["grad_norm"] += float(grad_norm)
                n_updates += 1
        for key in stats:
            stats[key] /= max(n_updates, 1)
        var_returns = float(np.var(returns))
        stats["explained_variance"] = (
            1.0 - float(np.var(advantages)) / var_returns
            if var_returns > 0.0 else float("nan")
        )
        return stats


# ---------------------------------------------------------------------------
# Live side: the real PPO.update over the same synthetic rollout.
# ---------------------------------------------------------------------------


class _LiveUpdater:
    """PPO.update's exact loop driven directly (no env needed)."""

    def __init__(self, obs_dim, act_space, hidden, n_steps, batch_size, seed):
        from repro.rl.ppo import PPO, PPOConfig
        from repro.rl.env import Env

        class _StubEnv(Env):
            observation_space = Box([0.0] * obs_dim, [1.0] * obs_dim)
            action_space = act_space

            def reset(self, *, seed=None):
                return np.zeros(obs_dim)

            def step(self, action):
                return np.zeros(obs_dim), 0.0, False, {}

        cfg = PPOConfig(
            n_steps=n_steps, batch_size=batch_size, n_epochs=N_EPOCHS,
            hidden=hidden, init_log_std=-0.5,
        )
        self.trainer = PPO(_StubEnv(), cfg, seed=seed)

    def fill(self, data):
        obs, actions, log_probs, advantages, returns = data
        buf = self.trainer.buffer
        buf.reset()
        buf.obs[:] = obs
        buf.actions[:] = actions
        buf.log_probs[:] = log_probs
        buf.advantages[:] = advantages
        buf.returns[:] = returns
        buf.pos = buf.capacity

    def update(self):
        self.trainer.update()


N_EPOCHS = 4


def make_rollout(n_steps, obs_dim, act_space, seed):
    rng = np.random.default_rng(seed)
    obs = rng.standard_normal((n_steps, obs_dim))
    if isinstance(act_space, Discrete):
        actions = rng.integers(act_space.n, size=n_steps)
    else:
        actions = rng.standard_normal((n_steps, act_space.dim))
    log_probs = rng.standard_normal(n_steps) * 0.1 - 1.0
    advantages = rng.standard_normal(n_steps)
    returns = rng.standard_normal(n_steps)
    return obs, actions, log_probs, advantages, returns


def measure_pair(fn_a, fn_b, repeats, blocks=6):
    """Time both loops in alternating blocks; report each side's best block.

    Alternating blocks puts both implementations in the same measurement
    window, so CPU frequency drift and scheduler noise (large on shared
    single-core machines) cannot skew the ratio the way two sequential
    loops can; within a block each side still runs back-to-back at cache
    steady state.  Taking the fastest block per side is the standard
    ``timeit.repeat``/min discipline: noise only ever slows a block down.
    Returns (rate_a, rate_b) in calls/sec.
    """
    fn_a()  # warm up (scratch growth, first-touch)
    fn_b()
    pc = time.perf_counter
    per_block = max(1, repeats // blocks)
    best_a = best_b = float("inf")
    for _ in range(blocks):
        t0 = pc()
        for _ in range(per_block):
            fn_a()
        t1 = pc()
        for _ in range(per_block):
            fn_b()
        t2 = pc()
        best_a = min(best_a, (t1 - t0) / per_block)
        best_b = min(best_b, (t2 - t1) / per_block)
    return 1.0 / best_a, 1.0 / best_b


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="smoke-test sizes (CI): fewer repeats, relaxed 1.5x guard",
    )
    args = parser.parse_args()
    # Full mode takes 12 alternating blocks per side: on shared hosts the
    # best-of-blocks estimate converges from below with block count
    # (noise only ever slows a block down), and 6 blocks measurably
    # under-samples the unloaded rate of both implementations.
    repeats = 10 if args.smoke else 120
    blocks = 6 if args.smoke else 12
    n_steps, batch_size = 256, 64

    scenarios = [
        ("adversary (continuous)", 10, Box([-1.0] * 3, [1.0] * 3), (32, 32)),
        ("pensieve (discrete)", 25, Discrete(6), (32, 16)),
    ]
    lines = [
        "PPO update path: flat-parameter NN core vs per-layer baseline",
        f"rollout={n_steps} batch_size={batch_size} n_epochs={N_EPOCHS} "
        f"repeats={repeats}",
        "",
        f"{'scenario':>24} {'baseline u/s':>13} {'flat u/s':>10} {'speedup':>8}",
    ]
    print("\n".join(lines))

    speedups = {}
    for label, obs_dim, act_space, hidden in scenarios:
        data = make_rollout(n_steps, obs_dim, act_space, seed=0)
        base = BaselineUpdater(obs_dim, act_space, hidden, seed=1)
        live = _LiveUpdater(obs_dim, act_space, hidden, n_steps, batch_size, seed=1)
        live.fill(data)
        base_rate, live_rate = measure_pair(
            lambda: base.update(data, batch_size, N_EPOCHS), live.update,
            repeats, blocks=blocks,
        )
        speedups[label] = live_rate / base_rate
        row = (f"{label:>24} {base_rate:>13.1f} {live_rate:>10.1f} "
               f"{speedups[label]:>7.2f}x")
        lines.append(row)
        print(row)

    table = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "bench_ppo_update.txt"
    out.write_text(table)
    print(f"\nwrote {out}")

    floor = 1.5 if args.smoke else 2.0
    guarded = speedups["adversary (continuous)"]
    if guarded < floor:
        print(f"FAIL: adversary-update speedup {guarded:.2f}x below the "
              f"{floor}x floor")
        return 1
    print(f"OK: adversary-update speedup {guarded:.2f}x >= {floor}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
