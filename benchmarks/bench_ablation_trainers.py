"""Ablation: PPO vs REINFORCE as the adversary's trainer.

The paper trains with PPO ("with the default arguments of the
stable-baselines implementation").  This ablation shows the framework is
trainer-agnostic, and quantifies what PPO's clipped updates buy over
vanilla policy gradient at an equal step budget.
"""

import numpy as np
from conftest import scaled, tuned_abr_adversary_config, write_results

from repro.abr.protocols import BufferBased
from repro.abr.video import Video
from repro.adversary.abr_env import AbrAdversaryEnv
from repro.analysis import format_table
from repro.rl.ppo import PPO
from repro.rl.reinforce import Reinforce, ReinforceConfig


def final_reward(history, k=5):
    return float(np.mean([h["mean_episode_reward"] for h in history[-k:]]))


def run_trainers(video, budget):
    ppo_env = AbrAdversaryEnv(BufferBased(), video)
    ppo = PPO(ppo_env, tuned_abr_adversary_config(), seed=6)
    ppo_history = ppo.learn(budget)

    pg_env = AbrAdversaryEnv(BufferBased(), video)
    pg_cfg = ReinforceConfig(
        episodes_per_update=8,
        max_episode_steps=video.n_chunks,
        learning_rate=5e-4,
        hidden=(32, 16),
    )
    pg = Reinforce(pg_env, pg_cfg, seed=6)
    pg_history = pg.learn(budget)
    return {
        "ppo": final_reward(ppo_history),
        "reinforce": final_reward(pg_history),
    }


def test_ablation_trainers(benchmark, video48):
    budget = scaled(40_000)
    rewards = benchmark.pedantic(run_trainers, args=(video48, budget),
                                 rounds=1, iterations=1)
    table = format_table(
        ["trainer", "final adversary episode reward"],
        [[name, value] for name, value in rewards.items()],
    )
    text = f"Ablation -- adversary trainer ({budget} steps each, vs BB)\n\n" + table + "\n"
    write_results("ablation_trainers", text)
    print("\n" + text)

    # Both must learn a real attack (positive regret-based reward)...
    assert rewards["ppo"] > 0
    assert rewards["reinforce"] > 0
    benchmark.extra_info.update(rewards)
