"""Shared fixtures for the experiment benchmarks.

Expensive artifacts (trained Pensieve, trained adversaries) are built once
per pytest session and reused by every bench that needs them.  The
``REPRO_BENCH_SCALE`` environment variable scales all training budgets
(e.g. ``REPRO_BENCH_SCALE=0.2`` for a quick smoke run); the defaults are
laptop-scale reductions of the paper's ~600k-step runs, chosen so the
whole suite completes in tens of minutes on one core.

Each bench writes its rendered tables/plots to ``results/<name>.txt`` and
records headline numbers in the pytest-benchmark ``extra_info``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.abr.protocols import MPC, BufferBased
from repro.abr.protocols.pensieve import train_pensieve
from repro.abr.video import Video
from repro.adversary.abr_env import default_abr_adversary_config, train_abr_adversary
from repro.adversary.cc_env import train_cc_adversary
from repro.cc.protocols.bbr import BBRSender
from repro.rl.ppo import PPOConfig
from repro.traces.synthetic import make_dataset

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def scaled(steps: int, floor: int = 4096) -> int:
    """Scale a training budget by REPRO_BENCH_SCALE (with a sane floor)."""
    return max(int(steps * SCALE), floor)


def write_results(name: str, text: str) -> Path:
    """Persist a bench's rendered output under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text)
    return path


def tuned_abr_adversary_config() -> PPOConfig:
    """The ABR adversary PPO configuration used across benches."""
    config = default_abr_adversary_config()
    config.ent_coef = 0.003
    config.learning_rate = 5e-4
    return config


def tuned_cc_adversary_config() -> PPOConfig:
    """The CC adversary PPO configuration used across benches.

    gamma=0.997 spans the ~10 s inter-probe horizon of the BBR attack
    (333 intervals of 30 ms).
    """
    return PPOConfig(
        n_steps=2048,
        batch_size=256,
        n_epochs=6,
        learning_rate=3e-4,
        ent_coef=0.001,
        hidden=(4,),
        init_log_std=-0.7,
        target_kl=0.03,
        gamma=0.997,
        gae_lambda=0.97,
    )


@pytest.fixture(scope="session")
def video48():
    """The evaluation video: 48 four-second chunks, Pensieve's ladder."""
    return Video.synthetic(n_chunks=48, seed=1)


@pytest.fixture(scope="session")
def pensieve_model(video48):
    """Pensieve trained on a mixed benign corpus (the attack target)."""
    corpus = make_dataset("broadband", 30, seed=10) + make_dataset("3g", 30, seed=11)
    return train_pensieve(corpus, video48, total_steps=scaled(120_000), seed=0)


@pytest.fixture(scope="session")
def adversary_vs_mpc(video48):
    """ABR adversary trained against the paper's MPC re-implementation."""
    return train_abr_adversary(
        MPC(robust=False),
        video48,
        total_steps=scaled(100_000),
        seed=0,
        config=tuned_abr_adversary_config(),
    )


@pytest.fixture(scope="session")
def adversary_vs_pensieve(video48, pensieve_model):
    """ABR adversary trained against the frozen Pensieve model."""
    return train_abr_adversary(
        pensieve_model.agent,
        video48,
        total_steps=scaled(100_000),
        seed=1,
        config=tuned_abr_adversary_config(),
    )


@pytest.fixture(scope="session")
def adversary_vs_bb(video48):
    """ABR adversary trained against buffer-based rate adaptation."""
    return train_abr_adversary(
        BufferBased(),
        video48,
        total_steps=scaled(60_000),
        seed=2,
        config=tuned_abr_adversary_config(),
    )


@pytest.fixture(scope="session")
def cc_adversary_vs_bbr():
    """CC adversary trained against BBR (Table 1 action space, 30 ms)."""
    return train_cc_adversary(
        BBRSender,
        total_steps=scaled(200_000),
        seed=2,
        episode_intervals=1000,
        config=tuned_cc_adversary_config(),
    )


@pytest.fixture(scope="session")
def abr_trace_corpora(adversary_vs_mpc, adversary_vs_pensieve):
    """The three Figure-1 corpora: anti-MPC, anti-Pensieve, random.

    The paper generates 200 traces per corpus; 60 keeps the one-core suite
    tractable while preserving the CDF shapes.
    """
    from repro.adversary.generation import generate_abr_traces
    from repro.traces.random_traces import random_abr_traces

    n_traces = max(int(60 * SCALE), 20)
    anti_mpc = [
        r.trace
        for r in generate_abr_traces(
            adversary_vs_mpc.trainer, adversary_vs_mpc.env, n_traces,
            name_prefix="anti-mpc",
        )
    ]
    anti_pensieve = [
        r.trace
        for r in generate_abr_traces(
            adversary_vs_pensieve.trainer, adversary_vs_pensieve.env, n_traces,
            name_prefix="anti-pensieve",
        )
    ]
    return {
        "anti-mpc": anti_mpc,
        "anti-pensieve": anti_pensieve,
        "random": random_abr_traces(n_traces, seed=77, n_segments=48),
    }


@pytest.fixture(scope="session")
def abr_protocols(pensieve_model):
    """The paper's protocol lineup: pensieve / mpc / bb (section 3.1)."""
    return {
        "pensieve": pensieve_model.agent,
        "mpc": MPC(robust=False),
        "bb": BufferBased(),
    }
