"""Figure 2: how much better the non-targeted protocol fares per corpus.

Paper numbers: on anti-MPC traces Pensieve achieves 2.55x MPC's QoE; on
anti-Pensieve traces MPC achieves 1.38x Pensieve's; the targeted protocol
is worse in over 75% of traces; random traces show much weaker separation.

Our adversaries (trained in exact per-chunk-download semantics and
replayed the same way) drive the targeted protocol's QoE negative, where
ratios lose meaning; we therefore report the paper's ratio columns where
QoE is positive and use two scale-robust statistics for the assertions:
the mean QoE *gap* (other - targeted) and the fraction of traces in which
the non-targeted protocol wins.
"""

import numpy as np
from conftest import write_results

from repro.analysis import format_table
from repro.experiments import run_abr_cdf_experiment

RATIO_PAIRS = [
    # (other, targeted, corpus) -- matching the paper's four bars.
    ("pensieve", "mpc", "anti-mpc"),
    ("mpc", "pensieve", "anti-pensieve"),
    ("pensieve", "mpc", "random"),
    ("mpc", "pensieve", "random"),
]

PAPER_MAX_RATIO = {
    ("pensieve", "mpc", "anti-mpc"): 2.55,
    ("mpc", "pensieve", "anti-pensieve"): 1.38,
}


def test_fig2_qoe_ratios(benchmark, video48, abr_protocols, abr_trace_corpora):
    experiment = benchmark.pedantic(
        run_abr_cdf_experiment,
        args=(video48, abr_trace_corpora, abr_protocols),
        kwargs={"ratio_pairs": RATIO_PAIRS, "chunk_indexed": True},
        rounds=1,
        iterations=1,
    )

    def stats(other, targeted, corpus):
        other_q = np.asarray(experiment.qoe[corpus][other])
        targeted_q = np.asarray(experiment.qoe[corpus][targeted])
        gap = float(np.mean(other_q - targeted_q))
        frac = float(np.mean(other_q > targeted_q))
        return gap, frac

    rows = []
    for key in RATIO_PAIRS:
        other, targeted, corpus = key
        summary = experiment.ratios[key]
        gap, frac = stats(other, targeted, corpus)
        positive = min(np.min(experiment.qoe[corpus][other]),
                       np.min(experiment.qoe[corpus][targeted])) > 0
        rows.append(
            [
                f"{other}/{targeted}",
                corpus,
                gap,
                frac,
                summary.mean if positive else float("nan"),
                summary.max if positive else float("nan"),
                PAPER_MAX_RATIO.get(key, "-"),
            ]
        )
    table = format_table(
        ["pair", "corpus", "mean QoE gap", "frac other wins",
         "ratio mean (if QoE>0)", "ratio max (if QoE>0)", "paper ratio"],
        rows,
    )
    text = (
        "Figure 2 -- advantage of the non-targeted protocol, per corpus\n\n"
        + table + "\n"
    )
    write_results("fig2_qoe_ratio", text)
    print("\n" + text)

    gap_anti_mpc, frac_anti_mpc = stats("pensieve", "mpc", "anti-mpc")
    gap_anti_pen, frac_anti_pen = stats("mpc", "pensieve", "anti-pensieve")
    gap_rand_mpc, frac_rand_mpc = stats("pensieve", "mpc", "random")
    gap_rand_pen, frac_rand_pen = stats("mpc", "pensieve", "random")

    # The adversary flips the matchup toward the non-targeted protocol
    # (paper: 2.55x / 1.38x)...
    assert gap_anti_mpc > 0.0
    assert gap_anti_pen > 0.0
    # ... in well over half the traces (paper: >75%)...
    assert frac_anti_mpc > 0.55
    assert frac_anti_pen > 0.55
    # ... and far more strongly than random traces manage.
    assert gap_anti_mpc > gap_rand_mpc
    assert gap_anti_pen > gap_rand_pen
    assert frac_anti_mpc > frac_rand_mpc
    assert frac_anti_pen > frac_rand_pen

    benchmark.extra_info["anti_mpc_gap"] = gap_anti_mpc
    benchmark.extra_info["anti_pensieve_gap"] = gap_anti_pen
    benchmark.extra_info["anti_mpc_frac"] = frac_anti_mpc
    benchmark.extra_info["anti_pensieve_frac"] = frac_anti_pen
