"""Figure 6: the CC adversary's deterministic actions over 30 seconds.

"Figure 6 shows the adversary's deterministic actions (i.e., before
exploration noise from training is added) over a 30 second trace, split
into 1000 intervals of 30ms.  The rapid fluctuations in bandwidth and
latency correspond exactly to the probing phases of BBR... Note that the
raw actions of the adversary may appear to be outside of the parameter
range, but exploration and clipping done by PPO will return the actions
to the acceptable range."

Reproduced shape: the deterministic action series varies substantially
more inside windows around BBR's probing epochs (~every 10 s) than in
between them.
"""

import numpy as np
from conftest import write_results

from repro.analysis import ascii_timeseries, format_table
from repro.experiments import run_bbr_adversarial_experiment


def action_variation(actions: np.ndarray, mask: np.ndarray) -> float:
    """Mean |step-to-step change| of the (bw, latency) actions under mask."""
    steps = np.abs(np.diff(actions[:, :2], axis=0)).sum(axis=1)
    selected = steps[mask[1:]]
    return float(selected.mean()) if selected.size else 0.0


def test_fig6_deterministic_actions(benchmark, cc_adversary_vs_bbr):
    experiment = benchmark.pedantic(
        run_bbr_adversarial_experiment,
        args=(cc_adversary_vs_bbr.trainer, cc_adversary_vs_bbr.env),
        kwargs={"n_online": 1, "n_replay": 1},
        rounds=1,
        iterations=1,
    )
    roll = experiment.deterministic
    actions = roll.raw_actions
    interval_s = cc_adversary_vs_bbr.env.interval_s
    n = actions.shape[0]
    times = np.arange(n) * interval_s

    # Windows of +-0.75 s around each PROBE_RTT entry of the attacked BBR.
    probe_mask = np.zeros(n, dtype=bool)
    for t_probe in experiment.deterministic_probe_times_s:
        probe_mask |= np.abs(times - t_probe) <= 0.75
    probing_var = action_variation(actions, probe_mask)
    steady_var = action_variation(actions, ~probe_mask)

    lines = ["Figure 6 -- deterministic adversary actions (raw, unclipped)\n"]
    for dim, name in enumerate(("bandwidth", "latency", "loss rate")):
        lines.append(f"raw {name} action:")
        lines.append(ascii_timeseries(actions[:, dim], label="30 ms intervals ->"))
    lines.append("")
    lines.append(
        format_table(
            ["where", "mean |action step| (bw+lat)"],
            [
                ["around BBR probing epochs", probing_var],
                ["between probes", steady_var],
            ],
        )
    )
    lines.append(
        f"\nBBR PROBE_RTT epochs at: "
        f"{[round(t, 1) for t in experiment.deterministic_probe_times_s]} s"
    )

    # Shape assertions: BBR probes under attack, and the adversary's
    # deterministic actions fluctuate more around those probing epochs
    # than in between (Figure 6's visual signature).  A strong adversary
    # partially *suppresses* probing (it keeps restamping the min-RTT
    # filter), so we require at least one epoch and, when several occur,
    # the ~10 s cadence.
    assert len(experiment.deterministic_probe_times_s) >= 1
    gaps = np.diff(experiment.deterministic_probe_times_s)
    assert np.all((gaps > 7.0) & (gaps < 16.0))
    assert probing_var > steady_var

    benchmark.extra_info["probing_variation"] = probing_var
    benchmark.extra_info["steady_variation"] = steady_var
    text = "\n".join(lines)
    write_results("fig6_adversary_actions", text)
    print("\n" + text)
